// Copyright (c) 2026 madnet authors. All rights reserved.

#include "net/medium.h"

#include <algorithm>

#include <cassert>
#include <cmath>

namespace madnet::net {

Medium::Medium(const Options& options, Simulator* simulator, Rng rng)
    : options_(options),
      simulator_(simulator),
      rng_(rng),
      index_(options.range_m > 0.0 ? options.range_m : 1.0) {
  assert(simulator != nullptr);
  assert(options.range_m > 0.0);
  assert(options.max_latency_s >= options.min_latency_s &&
         options.min_latency_s >= 0.0);
  assert(options.loss_probability >= 0.0 && options.loss_probability <= 1.0);
}

Status Medium::AddNode(NodeId id, MobilityModel* mobility) {
  if (mobility == nullptr) {
    return Status::InvalidArgument("mobility model must not be null");
  }
  auto [it, inserted] = nodes_.try_emplace(id);
  if (!inserted) return Status::AlreadyExists("node id already registered");
  it->second.mobility = mobility;
  ids_.push_back(id);
  index_time_ = -1.0;  // Force reindex: the node set changed.
  return Status::Ok();
}

Status Medium::SetReceiver(NodeId id, ReceiveHandler handler) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("unknown node id");
  it->second.handler = std::move(handler);
  return Status::Ok();
}

Status Medium::SetOnline(NodeId id, bool online) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("unknown node id");
  it->second.online = online;
  return Status::Ok();
}

uint64_t Medium::SentBy(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.sent;
}

uint64_t Medium::SentBytesBy(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.sent_bytes;
}

uint64_t Medium::ReceivedBy(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.received;
}

uint64_t Medium::ReceivedBytesBy(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.received_bytes;
}

bool Medium::IsOnline(NodeId id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.online;
}

Vec2 Medium::PositionOf(NodeId id) const {
  auto it = nodes_.find(id);
  assert(it != nodes_.end() && "PositionOf on unknown node");
  return it->second.mobility->PositionAt(simulator_->Now());
}

Vec2 Medium::VelocityOf(NodeId id) const {
  auto it = nodes_.find(id);
  assert(it != nodes_.end() && "VelocityOf on unknown node");
  return it->second.mobility->VelocityAt(simulator_->Now());
}

double Medium::RefreshIndex() const {
  const Time now = simulator_->Now();
  if (index_time_ < 0.0 || now - index_time_ > options_.reindex_interval_s) {
    std::vector<std::pair<NodeId, Vec2>> positions;
    positions.reserve(nodes_.size());
    for (NodeId id : ids_) {
      const NodeState& state = nodes_.at(id);
      positions.emplace_back(id, state.mobility->PositionAt(now));
    }
    index_.Rebuild(positions);
    index_time_ = now;
  }
  // Indexed positions are up to (now - index_time_) old; both endpoints of a
  // distance check may each have moved max_speed * staleness, so a query
  // enlarged by twice that is a guaranteed superset.
  return 2.0 * options_.max_speed_mps * (simulator_->Now() - index_time_);
}

std::vector<NodeId> Medium::NeighborsOf(const Vec2& center,
                                        double radius) const {
  const double slack = RefreshIndex();
  std::vector<NodeId> candidates;
  index_.QueryRange(center, radius + slack, &candidates);

  const Time now = simulator_->Now();
  const double r2 = radius * radius;
  std::vector<NodeId> result;
  result.reserve(candidates.size());
  for (NodeId id : candidates) {
    const NodeState& state = nodes_.at(id);
    if (!state.online) continue;
    if (DistanceSquared(state.mobility->PositionAt(now), center) <= r2) {
      result.push_back(id);
    }
  }
  return result;
}

Status Medium::Broadcast(NodeId from, const Packet& packet) {
  auto it = nodes_.find(from);
  if (it == nodes_.end()) return Status::NotFound("unknown sender");
  if (!it->second.online) {
    return Status::FailedPrecondition("sender is offline");
  }
  if (options_.csma) {
    CsmaTryTransmit(from, packet, 0);
    return Status::Ok();
  }

  stats_.messages_sent += 1;
  stats_.bytes_sent += packet.size_bytes;
  it->second.sent += 1;
  it->second.sent_bytes += packet.size_bytes;

  // Reception set is fixed at transmission time (propagation is effectively
  // instantaneous relative to node motion); the jittered delay models MAC
  // access plus processing.
  const Vec2 origin = PositionOf(from);
  if (observer_) observer_(from, packet, origin);
  for (NodeId to : NeighborsOf(origin, options_.range_m)) {
    if (to == from) continue;
    if (rng_.Bernoulli(options_.loss_probability)) {
      stats_.dropped_loss += 1;
      continue;
    }
    if (options_.fading_exponent > 0.0) {
      const double fraction =
          Distance(PositionOf(to), origin) / options_.range_m;
      if (rng_.Bernoulli(std::pow(fraction, options_.fading_exponent))) {
        stats_.dropped_loss += 1;
        continue;
      }
    }
    const double latency =
        rng_.Uniform(options_.min_latency_s, options_.max_latency_s);
    simulator_->Schedule(latency, [this, from, to, packet]() {
      Deliver(from, to, packet);
    });
  }
  return Status::Ok();
}

void Medium::CsmaTryTransmit(NodeId from, Packet packet, int attempt) {
  auto it = nodes_.find(from);
  if (it == nodes_.end()) return;
  NodeState& sender = it->second;
  if (!sender.online) return;  // Went offline while deferring.

  const Time now = simulator_->Now();
  if (sender.channel_busy_until > now) {
    // Carrier sensed busy: defer until it frees, plus a random backoff.
    if (attempt >= options_.max_mac_retries) {
      stats_.dropped_mac_busy += 1;
      return;
    }
    stats_.mac_defers += 1;
    const double wait = (sender.channel_busy_until - now) +
                        rng_.Uniform(0.0, options_.max_backoff_s);
    simulator_->Schedule(wait, [this, from, packet = std::move(packet),
                                attempt]() {
      CsmaTryTransmit(from, packet, attempt + 1);
    });
    return;
  }
  CsmaTransmit(from, packet);
}

void Medium::CsmaTransmit(NodeId from, const Packet& packet) {
  const Time now = simulator_->Now();
  const double airtime =
      options_.mac_overhead_s +
      static_cast<double>(packet.size_bytes) * 8.0 / options_.bitrate_bps;
  const Time end = now + airtime;

  NodeState& sender = nodes_.at(from);
  stats_.messages_sent += 1;
  stats_.bytes_sent += packet.size_bytes;
  sender.sent += 1;
  sender.sent_bytes += packet.size_bytes;
  sender.channel_busy_until = std::max(sender.channel_busy_until, end);

  const Vec2 origin = PositionOf(from);
  if (observer_) observer_(from, packet, origin);

  for (NodeId to : NeighborsOf(origin, options_.range_m)) {
    if (to == from) continue;
    NodeState& receiver = nodes_.at(to);
    // The receiver was already mid-reception of another frame: this frame
    // is garbled at that receiver (capture effect: the earlier frame
    // survives). Either way the carrier extends the busy period.
    const bool garbled = receiver.channel_busy_until > now;
    receiver.channel_busy_until =
        std::max(receiver.channel_busy_until, end);
    if (garbled) {
      stats_.dropped_collision += 1;
      continue;
    }
    if (rng_.Bernoulli(options_.loss_probability)) {
      stats_.dropped_loss += 1;
      continue;
    }
    if (options_.fading_exponent > 0.0) {
      const double fraction =
          Distance(PositionOf(to), origin) / options_.range_m;
      if (rng_.Bernoulli(std::pow(fraction, options_.fading_exponent))) {
        stats_.dropped_loss += 1;
        continue;
      }
    }
    // Reception completes when the frame's airtime ends.
    simulator_->Schedule(airtime, [this, from, to, packet]() {
      auto it = nodes_.find(to);
      if (it == nodes_.end()) return;
      if (!it->second.online) {
        stats_.dropped_offline += 1;
        return;
      }
      stats_.deliveries += 1;
      it->second.received += 1;
      it->second.received_bytes += packet.size_bytes;
      if (it->second.handler) it->second.handler(packet, from, to);
    });
  }
}

void Medium::Deliver(NodeId from, NodeId to, const Packet& packet) {
  auto it = nodes_.find(to);
  if (it == nodes_.end()) return;  // Node disappeared; nothing to do.
  NodeState& state = it->second;
  if (!state.online) {
    stats_.dropped_offline += 1;
    return;
  }
  const Time now = simulator_->Now();
  if (options_.enable_collisions && state.last_rx_time >= 0.0 &&
      state.last_rx_from != from &&
      now - state.last_rx_time < options_.collision_window_s) {
    // Two frames from different senders overlap at this receiver.
    stats_.dropped_collision += 1;
    state.last_rx_time = now;
    state.last_rx_from = from;
    return;
  }
  state.last_rx_time = now;
  state.last_rx_from = from;
  stats_.deliveries += 1;
  state.received += 1;
  state.received_bytes += packet.size_bytes;
  if (state.handler) state.handler(packet, from, to);
}

}  // namespace madnet::net
