// Copyright (c) 2026 madnet authors. All rights reserved.
//
// The shared wireless broadcast medium — the repo's substitute for ns-2's
// 802.11 PHY/MAC. Unit-disk propagation with configurable transmission
// range, per-receiver latency jitter, optional random loss, and an optional
// collision model. Every node in range of a broadcast receives it (wireless
// broadcasts are inherently promiscuous, which is what gossip
// Optimization 2's overhearing relies on).
//
// Storage layout (see docs/architecture.md, "Hot path layout"): node state
// is structure-of-arrays — parallel dense vectors (mobility pointers,
// online bits, collision-window state, per-node counters, a per-tick
// position cache) indexed by a per-medium dense index assigned at AddNode
// and never reused — so DeliverTo/Broadcast and the index rebuild stream
// over tightly packed arrays instead of striding through fat structs. The
// id→index map is consulted once at each public-API entry point (with a
// fast path for the dense 0..n-1 ids scenarios assign) and every hot-path
// loop then runs on plain array accesses. The spatial index stores dense
// indices too, so a broadcast performs zero hash lookups per receiver.
// In-flight frames live in a medium-owned arena (slot pool with intrusive
// refcounts) instead of one shared_ptr heap allocation per broadcast, and
// delivery callbacks capture {medium, slot, receiver} — 16 bytes, inside
// std::function's inline buffer, so scheduling a delivery allocates
// nothing. A Medium instance is single-threaded by design — concurrent
// replications each build their own Medium (see exec::RunReplicated).

#ifndef MADNET_NET_MEDIUM_H_
#define MADNET_NET_MEDIUM_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mobility/mobility_model.h"
#include "net/packet.h"
#include "obs/tile_load.h"
#include "obs/trace.h"
#include "net/spatial_index.h"
#include "sim/simulator.h"
#include "sim/tile_grid.h"
#include "util/random.h"
#include "util/status.h"

namespace madnet::net {

using mobility::MobilityModel;
using sim::Simulator;
using sim::Time;

/// Traffic counters, cumulative over the run. "Messages" counts broadcasts
/// (one frame per broadcast regardless of receiver count), matching the
/// paper's Number-of-Messages metric.
struct MediumStats {
  uint64_t messages_sent = 0;       ///< Broadcast frames put on the air.
  uint64_t bytes_sent = 0;          ///< Sum of frame sizes.
  uint64_t deliveries = 0;          ///< Per-receiver successful deliveries.
  uint64_t dropped_loss = 0;        ///< Per-receiver random losses.
  uint64_t dropped_collision = 0;   ///< Per-receiver collision losses.
  uint64_t dropped_offline = 0;     ///< Receiver was offline at delivery.
  uint64_t dropped_jammed = 0;      ///< Receiver was inside a jammed zone.
  uint64_t dropped_mac_busy = 0;    ///< CSMA: frame gave up after retries.
  uint64_t mac_defers = 0;          ///< CSMA: busy-channel backoffs taken.
  // Batched/memoized neighbour-query instrumentation (medium.batch_* in
  // the obs metrics output).
  uint64_t batch_queries = 0;     ///< Queries answered via QueryNeighbors.
  uint64_t batch_walk_reuse = 0;  ///< Batch queries that reused the previous
                                  ///< query's bucket walk.
  uint64_t batch_memo_hits = 0;   ///< Same-tick repeat queries served from
                                  ///< the neighbour memo.
  uint64_t arena_frames_peak = 0;  ///< Frame-arena in-flight high water.
  // Sharded-loop routing instrumentation (zero while no shard grid is
  // attached; see docs/SHARDING.md).
  uint64_t shard_cross_tile_deliveries = 0;  ///< Deliveries routed to a
                                             ///< receiver outside the
                                             ///< transmitter's tile.
  uint64_t shard_ghost_broadcasts = 0;  ///< Broadcasts whose radio disc
                                        ///< overlaps more than one tile
                                        ///< (the ghost-region traffic a
                                        ///< partitioned index must serve).
};

/// The broadcast medium connecting all nodes of a scenario.
class Medium {
 public:
  /// PHY/MAC parameters.
  struct Options {
    double range_m = 250.0;        ///< Unit-disk transmission range.
    double max_speed_mps = 15.0;   ///< Upper bound on node speed (for index
                                   ///< staleness slack).
    double reindex_interval_s = 1.0;  ///< Spatial index refresh period.
    double min_latency_s = 0.5e-3;    ///< Per-receiver delivery latency low.
    double max_latency_s = 2.0e-3;    ///< Per-receiver delivery latency high.
    double loss_probability = 0.0;    ///< Independent per-receiver loss.
    /// Distance-dependent fading: an additional per-receiver drop with
    /// probability (d / range)^fading_exponent. 0 disables (pure unit
    /// disk); larger exponents concentrate the loss at the cell edge,
    /// crudely modelling shadowing at the fringe of 802.11 range.
    double fading_exponent = 0.0;
    bool enable_collisions = false;   ///< Drop overlapping receptions.
    double collision_window_s = 1.0e-3;  ///< Frames from different senders
                                         ///< closer than this collide.

    /// --- CSMA/CA mode (a closer 802.11 substitute) ---
    /// When true, transmissions occupy the channel for their airtime
    /// (mac_overhead + bits/bitrate), senders carrier-sense and back off
    /// while the channel is busy at their location, neighbours defer, and
    /// overlapping receptions at a node garble the later frame (capture
    /// effect: the earlier one survives). Hidden terminals emerge
    /// naturally: two senders out of each other's range can both sense
    /// idle and collide at a node in between. The ideal mode (default)
    /// keeps the jittered-latency model above.
    bool csma = false;
    double bitrate_bps = 1.0e6;       ///< Channel rate (early 802.11).
    double mac_overhead_s = 0.5e-3;   ///< Preamble + IFS per frame.
    double max_backoff_s = 4.0e-3;    ///< Random defer when busy.
    int max_mac_retries = 16;         ///< Drop the frame after this many
                                      ///< consecutive busy defers.
  };

  /// Called on packet arrival: (packet, sender, receiver).
  using ReceiveHandler =
      std::function<void(const Packet&, NodeId from, NodeId to)>;

  /// Called once per broadcast, at transmission time, with the sender and
  /// its position. Used by instrumentation (e.g. message-density maps).
  using BroadcastObserver =
      std::function<void(NodeId from, const Packet&, const Vec2& origin)>;

  /// One range query in a QueryNeighbors batch.
  struct RangeQuery {
    Vec2 center;
    double radius = 0.0;
  };

  /// Flat result set of a QueryNeighbors batch: query i's neighbours are
  /// ids[offsets[i]] .. ids[offsets[i] + CountOf(i)), in input query
  /// order, element-wise identical to calling NeighborsOf per query at
  /// the same instant.
  struct NeighborBatch {
    std::vector<uint32_t> offsets;  ///< queries.size() + 1 entries.
    std::vector<NodeId> ids;        ///< Flat results, grouped per query.
    size_t CountOf(size_t query) const {
      return offsets[query + 1] - offsets[query];
    }
  };

  /// The medium schedules deliveries on `simulator` and draws jitter/loss
  /// from `rng`. Both must outlive the medium.
  Medium(const Options& options, Simulator* simulator, Rng rng);

  /// Registers a node with its mobility model (borrowed; must outlive the
  /// medium). Returns AlreadyExists if the id is taken.
  [[nodiscard]] Status AddNode(NodeId id, MobilityModel* mobility);

  /// Sets the upcall invoked when `id` receives a packet.
  [[nodiscard]] Status SetReceiver(NodeId id, ReceiveHandler handler);

  /// Marks a node on/off-line. Offline nodes neither send nor receive
  /// (the paper's issuer "goes off-line" after seeding the ad, and the
  /// fault layer's churn duty-cycles peers through here).
  [[nodiscard]] Status SetOnline(NodeId id, bool online);

  /// True iff the node exists and is online.
  bool IsOnline(NodeId id) const;

  /// Broadcasts `packet` from node `from` to every online node currently
  /// within range. Counts one message (in CSMA mode, when the frame
  /// actually transmits; a frame that exhausts its MAC retries is counted
  /// in dropped_mac_busy instead). Returns FailedPrecondition if the
  /// sender is offline, NotFound if it was never added.
  [[nodiscard]] Status Broadcast(NodeId from, const Packet& packet);

  /// Current position of a node (exact, from its mobility model).
  Vec2 PositionOf(NodeId id) const;

  /// Current velocity of a node.
  Vec2 VelocityOf(NodeId id) const;

  /// Ids of online nodes within `radius` of `center` right now (exact).
  /// Allocates the result vector on every call: for external/test use
  /// only. Internal hot paths use the scratch-backed NeighborIndicesOf;
  /// batched callers use QueryNeighbors.
  std::vector<NodeId> NeighborsOf(const Vec2& center, double radius) const;

  /// Answers every range query against a single index refresh. Queries
  /// are sorted internally by grid cell so queries whose boxes coincide
  /// share one bucket walk; results come back in input order and are
  /// element-wise identical to sequential NeighborsOf calls at the same
  /// instant. `out` is cleared and reused (its capacity persists across
  /// batches).
  void QueryNeighbors(const std::vector<RangeQuery>& queries,
                      NeighborBatch* out) const;

  /// Installs (or clears, with nullptr) the per-broadcast observer.
  void SetBroadcastObserver(BroadcastObserver observer) {
    observer_ = std::move(observer);
  }

  /// Installs (or clears, with nullptr) the trace sink receiving one
  /// kTraceTx record per on-air frame and one kTraceRx record per
  /// successful delivery. Must outlive the medium or be cleared first.
  void SetTrace(obs::Trace* trace) { trace_ = trace; }

  /// Installs (or clears, with nullptr) the spatial load map recording
  /// per-tile broadcast/delivery counts and queue depth. Must outlive the
  /// medium or be cleared first. Purely observational: attaching one never
  /// changes delivery order or RNG draws.
  void SetTileLoad(obs::TileLoadMap* tiles) { tiles_ = tiles; }

  /// Attaches the sharded loop's tile grid (borrowed; must outlive the
  /// medium). With a grid attached, every scheduled delivery is routed
  /// into the *receiver's* tile calendar — the cross-tile handoff path of
  /// docs/SHARDING.md — and the shard_* counters in stats() start
  /// accumulating. Routing never changes what a run computes (the sharded
  /// drain is order-canonical), so attaching a grid leaves results
  /// byte-identical.
  void SetShardGrid(const sim::TileGrid* grid) { shard_grid_ = grid; }

  /// The attached shard grid, or nullptr. Protocols use it to re-bin
  /// their timer chains as nodes migrate between tiles.
  const sim::TileGrid* shard_grid() const { return shard_grid_; }

  /// Range-parallel execution hook: body(begin, end) partitions [0, count)
  /// across workers. Injected by the layer that owns a thread pool (exec
  /// or a tool binary — net itself must stay below exec in the layer DAG);
  /// unset means serial. The medium only uses it for order-free per-node
  /// work (the index rebuild's position warm-up), so results are
  /// bit-identical with and without it, at any worker count.
  using ParallelExecutor = std::function<void(
      size_t count, const std::function<void(size_t begin, size_t end)>& body)>;
  void SetParallelExecutor(ParallelExecutor executor) {
    parallel_ = std::move(executor);
  }

  /// Transmit sequence number (1-based, per medium, assigned in broadcast
  /// order) of the frame currently being delivered to a receive handler;
  /// 0 outside a handler. Protocols read this inside OnReceive to stamp
  /// provenance (which transmission delivered this ad first).
  uint64_t delivering_tx_seq() const { return delivering_tx_seq_; }

  /// --- Fault hooks (driven by fault::FaultInjector; see docs/FAULTS.md) ---

  /// Loss probability added to Options::loss_probability for the duration
  /// of a loss episode; the sum is clamped to [0, 1] at each delivery.
  /// Applies to frames *delivered* from now on, including ones already in
  /// flight (loss is decided at delivery time).
  void SetExtraLoss(double probability);
  double extra_loss() const { return extra_loss_; }

  /// Replaces the set of jammed rectangles. While a receiver's position at
  /// delivery time lies inside any zone it decodes nothing
  /// (dropped_jammed). Senders inside a zone still transmit: jamming is a
  /// receive-side condition.
  void SetJamZones(std::vector<Rect> zones) { jam_zones_ = std::move(zones); }
  const std::vector<Rect>& jam_zones() const { return jam_zones_; }

  /// Cumulative traffic counters.
  const MediumStats& stats() const { return stats_; }

  /// Per-node radio accounting (0 for unknown ids). Together with
  /// stats() these support per-peer load and energy analysis (e.g. how
  /// Optimization 1 concentrates forwarding on annulus peers, and what
  /// each method costs a battery-powered handset).
  uint64_t SentBy(NodeId id) const;          ///< Frames transmitted.
  uint64_t SentBytesBy(NodeId id) const;     ///< Bytes transmitted.
  uint64_t ReceivedBy(NodeId id) const;      ///< Frames delivered to it.
  uint64_t ReceivedBytesBy(NodeId id) const; ///< Bytes delivered to it.

  /// All registered node ids, in insertion order.
  const std::vector<NodeId>& node_ids() const { return ids_; }

  const Options& options() const { return options_; }

 private:
  /// One in-flight broadcast frame in the arena. A slot's epoch runs from
  /// AcquireFrame (refs picks up one count per scheduled delivery, plus a
  /// carry ref through the CSMA retry chain) to the last ReleaseFrame,
  /// which resets the slot (drops the payload) and returns it to the free
  /// list. Slots live in a deque so references stay valid while handlers
  /// re-enter Broadcast mid-delivery.
  struct Frame {
    Packet packet;
    NodeId from = kInvalidNodeId;
    uint32_t from_index = 0;
    Vec2 origin;
    uint64_t tx_seq = 0;  ///< Per-medium transmit sequence (1-based).
    uint32_t refs = 0;
    uint32_t next_free = 0xFFFFFFFFu;
  };

  /// Dense index of a node, or kNotFound for unknown ids.
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;
  uint32_t IndexOf(NodeId id) const {
    // Scenarios register ids 0..n densely, so id == index almost always;
    // the hash map only backs arbitrary external id assignment.
    if (id < ids_.size() && ids_[id] == id) return id;
    auto it = index_of_.find(id);
    return it == index_of_.end() ? kNotFound : it->second;
  }

  /// Position of node `index` at `now`, through the per-tick cache
  /// (positions are pure functions of time, so caching is exact).
  Vec2 CachedPositionAt(uint32_t index, Time now) const;

  /// Rebuilds the spatial index if stale, and returns the slack to add to
  /// query radii so stale entries still yield a superset.
  double RefreshIndex() const;

  /// Dense indices of online nodes within `radius` of `center`, in index
  /// insertion order. Returns a reference to a per-medium scratch buffer:
  /// valid until the next call, so callers must finish iterating (and not
  /// trigger nested neighbour queries) before any other medium call that
  /// queries neighbours. Repeat same-tick queries with the same center
  /// and radius (one gossip round broadcasts every cached ad from one
  /// spot) are served from a memo without touching the index.
  const std::vector<uint32_t>& NeighborIndicesOf(const Vec2& center,
                                                 double radius) const;

  /// Delivery-time endpoint of the non-CSMA path: offline / jamming /
  /// collision / loss / fading are all decided here, when the frame
  /// arrives. `origin` is the sender's position at transmit time (for the
  /// fading distance).
  void DeliverTo(uint32_t to_index, NodeId from, const Vec2& origin,
                 const Packet& packet, uint64_t tx_seq);

  /// Non-CSMA delivery trampoline: unpacks arena slot `slot`, delivers to
  /// `to`, and drops one frame ref.
  void DeliverFrame(uint32_t slot, uint32_t to);

  /// Combined base + episode loss probability, clamped to [0, 1].
  double EffectiveLossProbability() const;

  /// True iff `position` lies inside any active jam zone.
  bool Jammed(const Vec2& position) const;

  /// CSMA: one carrier-sense attempt for the frame in arena slot `slot`;
  /// transmits, or reschedules itself after a backoff while the channel
  /// at the sender is busy. The frame stays in its slot through the whole
  /// retry chain — the packet is copied exactly once (into the arena),
  /// however many backoffs it takes.
  void CsmaTryTransmit(uint32_t slot, int attempt);

  /// CSMA: performs the actual on-air transmission (channel occupation,
  /// per-receiver capture/garble decision, delayed deliveries).
  void CsmaTransmit(uint32_t slot);

  /// CSMA: reception completes at airtime end — final offline/jam checks,
  /// then delivery; drops one frame ref.
  void CsmaCompleteRx(uint32_t slot, uint32_t to);

  /// Takes a slot from the free list (or grows the arena) and fills it.
  /// The new slot starts at zero refs; callers add one per outstanding
  /// use before anything can release it.
  uint32_t AcquireFrame(const Packet& packet, NodeId from,
                        uint32_t from_index);

  /// Drops one ref; the last ref resets the slot and frees it.
  void ReleaseFrame(uint32_t slot);

  Options options_;
  Simulator* simulator_;
  mutable Rng rng_;

  // --- SoA node state, dense, by index (docs/architecture.md) ---
  std::vector<NodeId> ids_;                 // index -> id.
  std::vector<MobilityModel*> mobility_;    // Borrowed models.
  std::vector<ReceiveHandler> handlers_;    // Receive upcalls (cold).
  std::vector<uint8_t> online_;             // 0/1 liveness bits.
  std::vector<Time> last_rx_time_;          // Collision window: last arrival.
  std::vector<NodeId> last_rx_from_;        // Collision window: last sender.
  std::vector<uint8_t> rx_garbled_;         // Collision window: garbled bit.
  std::vector<Time> channel_busy_until_;    // CSMA carrier state.
  std::vector<uint64_t> sent_;              // Per-node accounting (cold).
  std::vector<uint64_t> sent_bytes_;
  std::vector<uint64_t> received_;
  std::vector<uint64_t> received_bytes_;
  // Per-tick position cache: node index -> last evaluated position and
  // the sim time it was evaluated at (exact — positions are pure
  // functions of time).
  mutable std::vector<double> pos_x_;
  mutable std::vector<double> pos_y_;
  mutable std::vector<Time> pos_time_;
  // Mirror of each node's most recently used trajectory leg (legs are
  // immutable once generated). Times strictly inside the mirrored leg are
  // evaluated straight from these dense arrays — same arithmetic as
  // Leg::PositionAt, so results are bit-identical — without touching the
  // heap-allocated mobility model. Sentinel start == end == 0 before the
  // first evaluation.
  mutable std::vector<Time> leg_start_;
  mutable std::vector<Time> leg_end_;
  mutable std::vector<double> leg_from_x_;
  mutable std::vector<double> leg_from_y_;
  mutable std::vector<double> leg_to_x_;
  mutable std::vector<double> leg_to_y_;

  std::unordered_map<NodeId, uint32_t> index_of_;  // id -> index.
  mutable SpatialIndex index_;
  mutable Time index_time_ = -1.0;
  mutable MediumStats stats_;    // Mutable: query paths count cache hits.
  double extra_loss_ = 0.0;      // Episode loss added by the fault layer.
  std::vector<Rect> jam_zones_;  // Active jammer rectangles (usually 0-1).
  BroadcastObserver observer_;
  obs::Trace* trace_ = nullptr;
  obs::TileLoadMap* tiles_ = nullptr;
  const sim::TileGrid* shard_grid_ = nullptr;  // Borrowed; see SetShardGrid.
  ParallelExecutor parallel_;  // Unset: serial (SetParallelExecutor).

  // Frame arena (see Frame).
  std::deque<Frame> frame_pool_;
  uint32_t free_frame_ = kNotFound;
  uint32_t live_frames_ = 0;

  // Provenance: transmit sequence numbers, assigned in broadcast order
  // (1-based so 0 means "none"), and the sequence of the frame whose
  // delivery handler is currently running.
  uint64_t next_tx_seq_ = 1;
  uint64_t delivering_tx_seq_ = 0;

  // Neighbour memo: the (time, center, radius, epoch) key the current
  // neighbor_scratch_ contents answer. The epoch counts membership
  // mutations (AddNode/SetOnline), which are the only inputs other than
  // time that can change a query's result.
  mutable bool memo_valid_ = false;
  mutable Time memo_time_ = -1.0;
  mutable Vec2 memo_center_;
  mutable double memo_radius_ = -1.0;
  mutable uint64_t memo_epoch_ = 0;
  uint64_t mutation_epoch_ = 0;

  // Hot-path scratch, reused across broadcasts instead of reallocating
  // vectors per transmission. Safe because a Medium is single-threaded and
  // deliveries happen via the simulator (never re-entrantly inside the
  // neighbour loop).
  mutable std::vector<NodeId> rebuild_id_scratch_;
  mutable std::vector<double> rebuild_x_scratch_;
  mutable std::vector<double> rebuild_y_scratch_;
  mutable std::vector<NodeId> candidate_scratch_;
  mutable std::vector<uint32_t> neighbor_scratch_;
  // Batch-query scratch (QueryNeighbors).
  mutable std::vector<uint32_t> batch_order_scratch_;
  mutable std::vector<NodeId> walk_id_scratch_;
  mutable std::vector<double> walk_x_scratch_;
  mutable std::vector<double> walk_y_scratch_;
  mutable std::vector<NodeId> batch_id_scratch_;
  mutable std::vector<std::pair<uint32_t, uint32_t>> batch_span_scratch_;
};

}  // namespace madnet::net

#endif  // MADNET_NET_MEDIUM_H_
