// Copyright (c) 2026 madnet authors. All rights reserved.
//
// The shared wireless broadcast medium — the repo's substitute for ns-2's
// 802.11 PHY/MAC. Unit-disk propagation with configurable transmission
// range, per-receiver latency jitter, optional random loss, and an optional
// collision model. Every node in range of a broadcast receives it (wireless
// broadcasts are inherently promiscuous, which is what gossip
// Optimization 2's overhearing relies on).
//
// Storage layout: node state lives in a dense std::vector indexed by a
// per-medium dense index (assigned at AddNode, never reused or removed);
// the id→index map is consulted once at each public-API entry point and
// every hot-path loop then runs on plain array accesses. The spatial index
// stores dense indices too, so a broadcast performs zero hash lookups per
// receiver. A Medium instance is single-threaded by design — concurrent
// replications each build their own Medium (see scenario::RunReplicated).

#ifndef MADNET_NET_MEDIUM_H_
#define MADNET_NET_MEDIUM_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mobility/mobility_model.h"
#include "net/packet.h"
#include "obs/trace.h"
#include "net/spatial_index.h"
#include "sim/simulator.h"
#include "util/random.h"
#include "util/status.h"

namespace madnet::net {

using mobility::MobilityModel;
using sim::Simulator;
using sim::Time;

/// Traffic counters, cumulative over the run. "Messages" counts broadcasts
/// (one frame per broadcast regardless of receiver count), matching the
/// paper's Number-of-Messages metric.
struct MediumStats {
  uint64_t messages_sent = 0;       ///< Broadcast frames put on the air.
  uint64_t bytes_sent = 0;          ///< Sum of frame sizes.
  uint64_t deliveries = 0;          ///< Per-receiver successful deliveries.
  uint64_t dropped_loss = 0;        ///< Per-receiver random losses.
  uint64_t dropped_collision = 0;   ///< Per-receiver collision losses.
  uint64_t dropped_offline = 0;     ///< Receiver was offline at delivery.
  uint64_t dropped_jammed = 0;      ///< Receiver was inside a jammed zone.
  uint64_t dropped_mac_busy = 0;    ///< CSMA: frame gave up after retries.
  uint64_t mac_defers = 0;          ///< CSMA: busy-channel backoffs taken.
};

/// The broadcast medium connecting all nodes of a scenario.
class Medium {
 public:
  /// PHY/MAC parameters.
  struct Options {
    double range_m = 250.0;        ///< Unit-disk transmission range.
    double max_speed_mps = 15.0;   ///< Upper bound on node speed (for index
                                   ///< staleness slack).
    double reindex_interval_s = 1.0;  ///< Spatial index refresh period.
    double min_latency_s = 0.5e-3;    ///< Per-receiver delivery latency low.
    double max_latency_s = 2.0e-3;    ///< Per-receiver delivery latency high.
    double loss_probability = 0.0;    ///< Independent per-receiver loss.
    /// Distance-dependent fading: an additional per-receiver drop with
    /// probability (d / range)^fading_exponent. 0 disables (pure unit
    /// disk); larger exponents concentrate the loss at the cell edge,
    /// crudely modelling shadowing at the fringe of 802.11 range.
    double fading_exponent = 0.0;
    bool enable_collisions = false;   ///< Drop overlapping receptions.
    double collision_window_s = 1.0e-3;  ///< Frames from different senders
                                         ///< closer than this collide.

    /// --- CSMA/CA mode (a closer 802.11 substitute) ---
    /// When true, transmissions occupy the channel for their airtime
    /// (mac_overhead + bits/bitrate), senders carrier-sense and back off
    /// while the channel is busy at their location, neighbours defer, and
    /// overlapping receptions at a node garble the later frame (capture
    /// effect: the earlier one survives). Hidden terminals emerge
    /// naturally: two senders out of each other's range can both sense
    /// idle and collide at a node in between. The ideal mode (default)
    /// keeps the jittered-latency model above.
    bool csma = false;
    double bitrate_bps = 1.0e6;       ///< Channel rate (early 802.11).
    double mac_overhead_s = 0.5e-3;   ///< Preamble + IFS per frame.
    double max_backoff_s = 4.0e-3;    ///< Random defer when busy.
    int max_mac_retries = 16;         ///< Drop the frame after this many
                                      ///< consecutive busy defers.
  };

  /// Called on packet arrival: (packet, sender, receiver).
  using ReceiveHandler =
      std::function<void(const Packet&, NodeId from, NodeId to)>;

  /// Called once per broadcast, at transmission time, with the sender and
  /// its position. Used by instrumentation (e.g. message-density maps).
  using BroadcastObserver =
      std::function<void(NodeId from, const Packet&, const Vec2& origin)>;

  /// The medium schedules deliveries on `simulator` and draws jitter/loss
  /// from `rng`. Both must outlive the medium.
  Medium(const Options& options, Simulator* simulator, Rng rng);

  /// Registers a node with its mobility model (borrowed; must outlive the
  /// medium). Returns AlreadyExists if the id is taken.
  [[nodiscard]] Status AddNode(NodeId id, MobilityModel* mobility);

  /// Sets the upcall invoked when `id` receives a packet.
  [[nodiscard]] Status SetReceiver(NodeId id, ReceiveHandler handler);

  /// Marks a node on/off-line. Offline nodes neither send nor receive
  /// (the paper's issuer "goes off-line" after seeding the ad, and the
  /// fault layer's churn duty-cycles peers through here).
  [[nodiscard]] Status SetOnline(NodeId id, bool online);

  /// True iff the node exists and is online.
  bool IsOnline(NodeId id) const;

  /// Broadcasts `packet` from node `from` to every online node currently
  /// within range. Counts one message (in CSMA mode, when the frame
  /// actually transmits; a frame that exhausts its MAC retries is counted
  /// in dropped_mac_busy instead). Returns FailedPrecondition if the
  /// sender is offline, NotFound if it was never added.
  [[nodiscard]] Status Broadcast(NodeId from, const Packet& packet);

  /// Current position of a node (exact, from its mobility model).
  Vec2 PositionOf(NodeId id) const;

  /// Current velocity of a node.
  Vec2 VelocityOf(NodeId id) const;

  /// Ids of online nodes within `radius` of `center` right now (exact).
  std::vector<NodeId> NeighborsOf(const Vec2& center, double radius) const;

  /// Installs (or clears, with nullptr) the per-broadcast observer.
  void SetBroadcastObserver(BroadcastObserver observer) {
    observer_ = std::move(observer);
  }

  /// Installs (or clears, with nullptr) the trace sink receiving one
  /// kTraceTx record per on-air frame and one kTraceRx record per
  /// successful delivery. Must outlive the medium or be cleared first.
  void SetTrace(obs::Trace* trace) { trace_ = trace; }

  /// --- Fault hooks (driven by fault::FaultInjector; see docs/FAULTS.md) ---

  /// Loss probability added to Options::loss_probability for the duration
  /// of a loss episode; the sum is clamped to [0, 1] at each delivery.
  /// Applies to frames *delivered* from now on, including ones already in
  /// flight (loss is decided at delivery time).
  void SetExtraLoss(double probability);
  double extra_loss() const { return extra_loss_; }

  /// Replaces the set of jammed rectangles. While a receiver's position at
  /// delivery time lies inside any zone it decodes nothing
  /// (dropped_jammed). Senders inside a zone still transmit: jamming is a
  /// receive-side condition.
  void SetJamZones(std::vector<Rect> zones) { jam_zones_ = std::move(zones); }
  const std::vector<Rect>& jam_zones() const { return jam_zones_; }

  /// Cumulative traffic counters.
  const MediumStats& stats() const { return stats_; }

  /// Per-node radio accounting (0 for unknown ids). Together with
  /// stats() these support per-peer load and energy analysis (e.g. how
  /// Optimization 1 concentrates forwarding on annulus peers, and what
  /// each method costs a battery-powered handset).
  uint64_t SentBy(NodeId id) const;          ///< Frames transmitted.
  uint64_t SentBytesBy(NodeId id) const;     ///< Bytes transmitted.
  uint64_t ReceivedBy(NodeId id) const;      ///< Frames delivered to it.
  uint64_t ReceivedBytesBy(NodeId id) const; ///< Bytes delivered to it.

  /// All registered node ids, in insertion order.
  const std::vector<NodeId>& node_ids() const { return ids_; }

  const Options& options() const { return options_; }

 private:
  struct NodeState {
    MobilityModel* mobility = nullptr;
    ReceiveHandler handler;
    bool online = true;
    uint64_t sent = 0;            // Frames transmitted by this node.
    uint64_t sent_bytes = 0;      // Bytes transmitted by this node.
    uint64_t received = 0;        // Frames delivered to this node.
    uint64_t received_bytes = 0;  // Bytes delivered to this node.
    // Collision model: time and sender of the most recent frame arrival,
    // and whether that arrival garbled the window (a collision already
    // happened inside it, so every further overlapping frame collides
    // regardless of sender).
    Time last_rx_time = -1.0;
    NodeId last_rx_from = kInvalidNodeId;
    bool rx_garbled = false;
    // CSMA: the channel at this node is occupied until this instant.
    Time channel_busy_until = -1.0;
  };

  /// Dense index of a node, or kNotFound for unknown ids.
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;
  uint32_t IndexOf(NodeId id) const {
    auto it = index_of_.find(id);
    return it == index_of_.end() ? kNotFound : it->second;
  }

  /// Rebuilds the spatial index if stale, and returns the slack to add to
  /// query radii so stale entries still yield a superset.
  double RefreshIndex() const;

  /// Dense indices of online nodes within `radius` of `center`, in index
  /// insertion order. Returns a reference to a per-medium scratch buffer:
  /// valid until the next call, so callers must finish iterating (and not
  /// trigger nested neighbour queries) before any other medium call that
  /// queries neighbours.
  const std::vector<uint32_t>& NeighborIndicesOf(const Vec2& center,
                                                 double radius) const;

  /// Delivery-time endpoint of the non-CSMA path: offline / jamming /
  /// collision / loss / fading are all decided here, when the frame
  /// arrives. `origin` is the sender's position at transmit time (for the
  /// fading distance).
  void DeliverTo(uint32_t to_index, NodeId from, const Vec2& origin,
                 const Packet& packet);

  /// Combined base + episode loss probability, clamped to [0, 1].
  double EffectiveLossProbability() const;

  /// True iff `position` lies inside any active jam zone.
  bool Jammed(const Vec2& position) const;

  /// CSMA: one carrier-sense attempt; transmits, or reschedules itself
  /// after a backoff while the channel at the sender is busy. The packet
  /// is moved through the whole retry chain — a frame is copied at most
  /// once (out of Broadcast's const ref), however many backoffs it takes.
  void CsmaTryTransmit(uint32_t from_index, Packet packet, int attempt);

  /// CSMA: performs the actual on-air transmission (channel occupation,
  /// per-receiver capture/garble decision, delayed deliveries).
  void CsmaTransmit(uint32_t from_index, Packet packet);

  Options options_;
  Simulator* simulator_;
  mutable Rng rng_;
  std::vector<NodeState> states_;                  // Dense, by index.
  std::vector<NodeId> ids_;                        // index -> id.
  std::unordered_map<NodeId, uint32_t> index_of_;  // id -> index.
  mutable SpatialIndex index_;
  mutable Time index_time_ = -1.0;
  MediumStats stats_;
  double extra_loss_ = 0.0;      // Episode loss added by the fault layer.
  std::vector<Rect> jam_zones_;  // Active jammer rectangles (usually 0-1).
  BroadcastObserver observer_;
  obs::Trace* trace_ = nullptr;

  // Hot-path scratch, reused across broadcasts instead of reallocating two
  // vectors per transmission. Safe because a Medium is single-threaded and
  // deliveries happen via the simulator (never re-entrantly inside the
  // neighbour loop).
  mutable std::vector<std::pair<NodeId, Vec2>> rebuild_scratch_;
  mutable std::vector<NodeId> candidate_scratch_;
  mutable std::vector<uint32_t> neighbor_scratch_;
};

}  // namespace madnet::net

#endif  // MADNET_NET_MEDIUM_H_
