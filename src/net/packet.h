// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Wire-level types of the wireless substrate. The medium is payload-
// agnostic: protocols attach any Payload subclass; size accounting uses the
// declared wire size.

#ifndef MADNET_NET_PACKET_H_
#define MADNET_NET_PACKET_H_

#include <cstdint>
#include <memory>

namespace madnet::net {

/// Identifier of a network node (stable for the lifetime of a scenario).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNodeId = 0xFFFFFFFFu;

/// Base class for anything a packet can carry. Payloads are immutable once
/// broadcast (shared by every receiver), mirroring real radio broadcast.
struct Payload {
  virtual ~Payload() = default;
};

/// One over-the-air frame. All madnet transmissions are local broadcasts
/// ("the broadcast nature of wireless transmission is exploited to transfer
/// an advertisement to all neighbour peers by one single message" — paper,
/// Section III-A).
struct Packet {
  std::shared_ptr<const Payload> payload;  ///< Immutable shared body.
  uint32_t size_bytes = 0;                 ///< Modelled wire size.

  // --- Provenance metadata (not wire bytes; size_bytes is unaffected) ---
  // Protocols stamp these so the observability layer can attribute each
  // frame to the advertisement it carries and reconstruct dissemination
  // trees from the trace. Frames that carry no single ad (e.g. batched
  // exchange messages) leave ad_key at 0.
  uint64_t ad_key = 0;  ///< AdId::Key() of the carried ad, or 0.
  uint32_t hop = 0;     ///< Hop count of this transmission (issuer = 0).
};

}  // namespace madnet::net

#endif  // MADNET_NET_PACKET_H_
