// Copyright (c) 2026 madnet authors. All rights reserved.

#include "net/spatial_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace madnet::net {
namespace {

// Cap on the dense grid's cell count, as a multiple of the point count.
// Points spread over a huge area relative to the cell size would otherwise
// allocate an enormous mostly-empty grid; doubling the effective cell size
// until the grid fits keeps memory O(points) for any input. Realistic
// scenarios (area a few tens of cells wide) never trigger the fallback, so
// the cell partition — and therefore query result order — matches the
// historical hash-grid exactly.
constexpr int64_t kMinGridCells = 1024;
constexpr int64_t kCellsPerPoint = 8;

}  // namespace

SpatialIndex::SpatialIndex(double cell_size)
    : cell_size_(cell_size), grid_cell_size_(cell_size) {
  MADNET_DCHECK(cell_size > 0.0 && std::isfinite(cell_size));
}

int64_t SpatialIndex::CellCoord(double v) const {
  // floor() via truncating cast + negative adjustment: identical to
  // std::floor for every finite quotient that fits in int64 (coordinates
  // are metre-scale, so quotients are nowhere near the limit), without the
  // libm call this hot path would otherwise pay per point.
  const double q = v / grid_cell_size_;
  int64_t k = static_cast<int64_t>(q);
  k -= static_cast<int64_t>(q < static_cast<double>(k));
  return k;
}

void SpatialIndex::Rebuild(
    const std::vector<std::pair<NodeId, Vec2>>& positions) {
  compat_ids_scratch_.clear();
  compat_xs_scratch_.clear();
  compat_ys_scratch_.clear();
  compat_ids_scratch_.reserve(positions.size());
  compat_xs_scratch_.reserve(positions.size());
  compat_ys_scratch_.reserve(positions.size());
  for (const auto& [id, position] : positions) {
    compat_ids_scratch_.push_back(id);
    compat_xs_scratch_.push_back(position.x);
    compat_ys_scratch_.push_back(position.y);
  }
  Rebuild(compat_ids_scratch_, compat_xs_scratch_, compat_ys_scratch_);
}

// MADNET_HOT
void SpatialIndex::Rebuild(const std::vector<NodeId>& ids,
                           const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  MADNET_DCHECK_EQ(ids.size(), xs.size());
  MADNET_DCHECK_EQ(ids.size(), ys.size());
  const size_t n = ids.size();
  ids_.resize(n);
  xs_.resize(n);
  ys_.resize(n);
  if (n == 0) {
    width_ = height_ = 0;
    grid_cell_size_ = cell_size_;
    cell_start_.assign(1, 0);
    return;
  }

  // Pass 1: bounding box in cell coordinates, coarsening the effective
  // cell size until the dense grid fits the cap (pure function of the
  // input, so rebuilds stay deterministic).
  grid_cell_size_ = cell_size_;
  const int64_t max_cells =
      std::max<int64_t>(kMinGridCells, kCellsPerPoint * static_cast<int64_t>(n));
  cx_scratch_.resize(n);
  cy_scratch_.resize(n);
  for (;;) {
    int64_t lo_cx = 0, hi_cx = 0, lo_cy = 0, hi_cy = 0;
    for (size_t i = 0; i < n; ++i) {
      // Non-finite coordinates would land in a garbage cell and silently
      // vanish from every range query.
      MADNET_DCHECK(std::isfinite(xs[i]) && std::isfinite(ys[i]));
      // Per-point coordinates are kept so the counting-sort pass below can
      // reuse them instead of redoing the floor-divisions; each coarsening
      // retry overwrites them, so after the loop they match grid_cell_size_.
      const int64_t cx = CellCoord(xs[i]);
      const int64_t cy = CellCoord(ys[i]);
      cx_scratch_[i] = cx;
      cy_scratch_[i] = cy;
      if (i == 0) {
        lo_cx = hi_cx = cx;
        lo_cy = hi_cy = cy;
      } else {
        lo_cx = std::min(lo_cx, cx);
        hi_cx = std::max(hi_cx, cx);
        lo_cy = std::min(lo_cy, cy);
        hi_cy = std::max(hi_cy, cy);
      }
    }
    const int64_t width = hi_cx - lo_cx + 1;
    const int64_t height = hi_cy - lo_cy + 1;
    if (width <= max_cells && height <= max_cells && width * height <= max_cells) {
      min_cx_ = lo_cx;
      min_cy_ = lo_cy;
      width_ = width;
      height_ = height;
      break;
    }
    grid_cell_size_ *= 2.0;
  }

  // Pass 2: counting sort into the grid. The fill is stable, so points
  // sharing a cell keep their input order (a determinism requirement).
  const size_t cells = static_cast<size_t>(width_ * height_);
  cell_start_.assign(cells + 1, 0);
  cell_of_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t cell =
        static_cast<size_t>(cx_scratch_[i] - min_cx_) * height_ +
        static_cast<size_t>(cy_scratch_[i] - min_cy_);
    cell_of_scratch_[i] = static_cast<uint32_t>(cell);
    ++cell_start_[cell + 1];
  }
  for (size_t c = 0; c < cells; ++c) cell_start_[c + 1] += cell_start_[c];
  fill_scratch_.assign(cell_start_.begin(), cell_start_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t at = fill_scratch_[cell_of_scratch_[i]]++;
    ids_[at] = ids[i];
    xs_[at] = xs[i];
    ys_[at] = ys[i];
  }
}

SpatialIndex::CellBox SpatialIndex::BoxFor(const Vec2& center,
                                           double radius) const {
  CellBox box;
  if (width_ == 0 || height_ == 0) return box;  // Empty index: empty box.
  box.lo_cx = std::max(CellCoord(center.x - radius), min_cx_);
  box.hi_cx = std::min(CellCoord(center.x + radius), min_cx_ + width_ - 1);
  box.lo_cy = std::max(CellCoord(center.y - radius), min_cy_);
  box.hi_cy = std::min(CellCoord(center.y + radius), min_cy_ + height_ - 1);
  return box;
}

// MADNET_HOT
void SpatialIndex::QueryRange(const Vec2& center, double radius,
                              std::vector<NodeId>* out) const {
  MADNET_DCHECK(radius >= 0.0 && std::isfinite(radius));
  const double r2 = radius * radius;
  const CellBox box = BoxFor(center, radius);
  for (int64_t cx = box.lo_cx; cx <= box.hi_cx; ++cx) {
    const size_t column = static_cast<size_t>(cx - min_cx_) * height_;
    for (int64_t cy = box.lo_cy; cy <= box.hi_cy; ++cy) {
      const size_t cell = column + static_cast<size_t>(cy - min_cy_);
      for (uint32_t k = cell_start_[cell]; k < cell_start_[cell + 1]; ++k) {
        const double dx = xs_[k] - center.x;
        const double dy = ys_[k] - center.y;
        if (dx * dx + dy * dy <= r2) {
          out->push_back(ids_[k]);
        }
      }
    }
  }
}

// MADNET_HOT
void SpatialIndex::CollectBox(const CellBox& box, std::vector<NodeId>* out_ids,
                              std::vector<double>* out_xs,
                              std::vector<double>* out_ys) const {
  for (int64_t cx = box.lo_cx; cx <= box.hi_cx; ++cx) {
    const size_t column = static_cast<size_t>(cx - min_cx_) * height_;
    for (int64_t cy = box.lo_cy; cy <= box.hi_cy; ++cy) {
      const size_t cell = column + static_cast<size_t>(cy - min_cy_);
      for (uint32_t k = cell_start_[cell]; k < cell_start_[cell + 1]; ++k) {
        out_ids->push_back(ids_[k]);
        out_xs->push_back(xs_[k]);
        out_ys->push_back(ys_[k]);
      }
    }
  }
}

}  // namespace madnet::net
