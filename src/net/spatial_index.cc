// Copyright (c) 2026 madnet authors. All rights reserved.

#include "net/spatial_index.h"

#include <cmath>

#include "util/logging.h"

namespace madnet::net {

SpatialIndex::SpatialIndex(double cell_size) : cell_size_(cell_size) {
  MADNET_DCHECK(cell_size > 0.0 && std::isfinite(cell_size));
}

SpatialIndex::CellKey SpatialIndex::KeyFor(const Vec2& p) const {
  return CellKey{static_cast<int32_t>(std::floor(p.x / cell_size_)),
                 static_cast<int32_t>(std::floor(p.y / cell_size_))};
}

void SpatialIndex::Rebuild(
    const std::vector<std::pair<NodeId, Vec2>>& positions) {
  // Lazy clear: bumping the generation invalidates every bucket at once;
  // a bucket's point vector is cleared (capacity kept) only when the new
  // point set actually touches it, so rebuild cost is O(occupied cells),
  // not O(all cells ever occupied).
  ++generation_;
  count_ = positions.size();
  for (const auto& [id, position] : positions) {
    // Non-finite coordinates would land in a garbage cell and silently
    // vanish from every range query.
    MADNET_DCHECK(std::isfinite(position.x) && std::isfinite(position.y));
    Cell& cell = cells_[KeyFor(position)];
    if (cell.generation != generation_) {
      cell.generation = generation_;
      cell.points.clear();
    }
    cell.points.push_back(Point{id, position});
  }
}

void SpatialIndex::QueryRange(const Vec2& center, double radius,
                              std::vector<NodeId>* out) const {
  MADNET_DCHECK(radius >= 0.0 && std::isfinite(radius));
  const double r2 = radius * radius;
  const CellKey lo = KeyFor({center.x - radius, center.y - radius});
  const CellKey hi = KeyFor({center.x + radius, center.y + radius});
  for (int32_t cx = lo.cx; cx <= hi.cx; ++cx) {
    for (int32_t cy = lo.cy; cy <= hi.cy; ++cy) {
      auto it = cells_.find(CellKey{cx, cy});
      if (it == cells_.end() || it->second.generation != generation_) {
        continue;
      }
      for (const Point& point : it->second.points) {
        // Cell-membership consistency: a live point must hash back to the
        // bucket it is stored in (catches cell_size_ or generation bugs).
        MADNET_DCHECK(KeyFor(point.position) == it->first);
        if (DistanceSquared(point.position, center) <= r2) {
          out->push_back(point.id);
        }
      }
    }
  }
}

}  // namespace madnet::net
