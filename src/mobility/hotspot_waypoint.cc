// Copyright (c) 2026 madnet authors. All rights reserved.

#include "mobility/hotspot_waypoint.h"

#include <algorithm>
#include <cassert>

namespace madnet::mobility {

HotspotWaypoint::HotspotWaypoint(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  assert(options.min_speed_mps > 0.0 &&
         options.max_speed_mps >= options.min_speed_mps);
  assert(options.min_pause_s >= 0.0 &&
         options.max_pause_s >= options.min_pause_s);
  assert(options.hotspot_probability >= 0.0 &&
         options.hotspot_probability <= 1.0);
  assert((options.hotspot_probability == 0.0 || !options.hotspots.empty()) &&
         "hotspot_probability > 0 requires hotspots");
  double total = 0.0;
  for (const Hotspot& hotspot : options.hotspots) {
    assert(hotspot.weight > 0.0 && hotspot.sigma_m >= 0.0);
    assert(options.area.Contains(hotspot.center));
    total += hotspot.weight;
    cumulative_weights_.push_back(total);
  }
  for (double& w : cumulative_weights_) w /= total > 0.0 ? total : 1.0;
}

Vec2 HotspotWaypoint::NextWaypoint() {
  if (!options_.hotspots.empty() &&
      rng_.Bernoulli(options_.hotspot_probability)) {
    const double roll = rng_.NextDouble();
    const size_t index = static_cast<size_t>(
        std::lower_bound(cumulative_weights_.begin(),
                         cumulative_weights_.end(), roll) -
        cumulative_weights_.begin());
    const Hotspot& hotspot =
        options_.hotspots[std::min(index, options_.hotspots.size() - 1)];
    const Vec2 target{rng_.Normal(hotspot.center.x, hotspot.sigma_m),
                      rng_.Normal(hotspot.center.y, hotspot.sigma_m)};
    return options_.area.Clamp(target);
  }
  return rng_.UniformInRect(options_.area);
}

Leg HotspotWaypoint::NextLeg(const Leg* previous) {
  const Time start = previous == nullptr ? 0.0 : previous->end;
  const Vec2 from =
      previous == nullptr ? rng_.UniformInRect(options_.area) : previous->to;

  if (pause_next_) {
    pause_next_ = false;
    const Time pause =
        rng_.Uniform(options_.min_pause_s, options_.max_pause_s);
    return Leg{start, start + pause, from, from};
  }

  pause_next_ = options_.max_pause_s > 0.0;
  const Vec2 to = NextWaypoint();
  const double speed =
      rng_.Uniform(options_.min_speed_mps, options_.max_speed_mps);
  const double distance = Distance(from, to);
  const Time duration = distance > 0.0 ? distance / speed : 1e-3;
  return Leg{start, start + duration, from, to};
}

}  // namespace madnet::mobility
