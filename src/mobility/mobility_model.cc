// Copyright (c) 2026 madnet authors. All rights reserved.

#include "mobility/mobility_model.h"

#include <algorithm>
#include <cassert>

namespace madnet::mobility {

namespace {
// Legs may legitimately have zero duration (instant turns); require progress
// within this many consecutive generated legs.
constexpr int kMaxZeroDurationLegs = 16;
}  // namespace

Vec2 Leg::PositionAt(Time t) const {
  Time d = Duration();
  if (d <= 0.0) return from;
  double s = (t - start) / d;
  s = std::clamp(s, 0.0, 1.0);
  return from + (to - from) * s;
}

void MobilityModel::EnsureHorizon(Time horizon) {
  int zero_streak = 0;
  while (legs_.empty() || legs_.back().end < horizon) {
    const Leg* previous = legs_.empty() ? nullptr : &legs_.back();
    Leg next = NextLeg(previous);
    if (previous != nullptr) {
      assert(next.start == previous->end && "legs must abut in time");
      assert(next.from == previous->to && "legs must abut in space");
    }
    assert(next.end >= next.start && "leg must not run backwards");
    zero_streak = next.Duration() > 0.0 ? 0 : zero_streak + 1;
    assert(zero_streak < kMaxZeroDurationLegs &&
           "mobility model failed to make progress");
    (void)zero_streak;
    // The trajectory extends by whole legs (seconds of virtual time each),
    // so per-query cost is O(1) amortized; hot callers hit the cursor cache.
    // NOLINTNEXTLINE(madnet-hot-transitive-alloc): amortized growth.
    legs_.push_back(next);
  }
}

size_t MobilityModel::LegIndexAt(Time t) {
  assert(t >= 0.0 && "mobility queries require non-negative time");
  // Fast path first: if the cached cursor leg contains `t`, the trajectory
  // already covers `t` and EnsureHorizon would be a no-op, so checking the
  // cursor before extending is a pure reorder.
  if (cursor_ < legs_.size() && legs_[cursor_].start <= t &&
      t <= legs_[cursor_].end) {
    return cursor_;
  }
  EnsureHorizon(t);
  // Binary search: first leg whose end >= t.
  auto it = std::lower_bound(
      legs_.begin(), legs_.end(), t,
      [](const Leg& leg, Time value) { return leg.end < value; });
  assert(it != legs_.end());
  cursor_ = static_cast<size_t>(it - legs_.begin());
  return cursor_;
}

Vec2 MobilityModel::PositionAtSlow(Time t) {
  return legs_[LegIndexAt(t)].PositionAt(t);
}

Vec2 MobilityModel::VelocityAt(Time t) {
  size_t index = LegIndexAt(t);
  // Prefer the later leg at boundaries so a node "already moving" reports
  // its new direction the instant a leg starts.
  if (t == legs_[index].end && index + 1 < legs_.size()) ++index;
  return legs_[index].Velocity();
}

std::vector<CrossingInterval> MobilityModel::CrossingsWithin(
    const Circle& circle, Time t0, Time t1) {
  std::vector<CrossingInterval> result;
  if (t1 < t0) return result;
  EnsureHorizon(t1);
  for (const Leg& leg : legs_) {
    if (leg.end < t0) continue;
    if (leg.start > t1) break;
    const Time lo = std::max(leg.start, t0);
    const Time hi = std::min(leg.end, t1);
    Vec2 from = leg.PositionAt(lo);
    Vec2 to = leg.PositionAt(hi);
    auto crossing = SegmentCircleCrossing(from, to, lo, hi, circle);
    if (!crossing.has_value()) continue;
    if (!result.empty() && crossing->enter <= result.back().exit) {
      // Coalesce with the previous interval (leg boundary inside circle).
      result.back().exit = std::max(result.back().exit, crossing->exit);
    } else {
      result.push_back(*crossing);
    }
  }
  return result;
}

}  // namespace madnet::mobility
