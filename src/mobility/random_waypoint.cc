// Copyright (c) 2026 madnet authors. All rights reserved.

#include "mobility/random_waypoint.h"

#include <cassert>

namespace madnet::mobility {

RandomWaypoint::RandomWaypoint(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  assert(options.min_speed_mps > 0.0 &&
         options.max_speed_mps >= options.min_speed_mps);
  assert(options.min_pause_s >= 0.0 &&
         options.max_pause_s >= options.min_pause_s);
  assert(options.area.Width() > 0.0 && options.area.Height() > 0.0);
}

Leg RandomWaypoint::NextLeg(const Leg* previous) {
  const Time start = previous == nullptr ? 0.0 : previous->end;
  const Vec2 from =
      previous == nullptr ? rng_.UniformInRect(options_.area) : previous->to;

  if (pause_next_) {
    pause_next_ = false;
    const Time pause =
        rng_.Uniform(options_.min_pause_s, options_.max_pause_s);
    return Leg{start, start + pause, from, from};
  }

  pause_next_ = options_.max_pause_s > 0.0;
  const Vec2 to = rng_.UniformInRect(options_.area);
  const double speed =
      rng_.Uniform(options_.min_speed_mps, options_.max_speed_mps);
  const double distance = Distance(from, to);
  // A degenerate zero-length hop still advances time a little so the model
  // always makes progress.
  const Time duration = distance > 0.0 ? distance / speed : 1e-3;
  return Leg{start, start + duration, from, to};
}

}  // namespace madnet::mobility
