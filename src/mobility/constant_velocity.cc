// Copyright (c) 2026 madnet authors. All rights reserved.

#include "mobility/constant_velocity.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace madnet::mobility {

ConstantVelocity::ConstantVelocity(const Rect& area, const Vec2& position,
                                   const Vec2& velocity)
    : area_(area), start_position_(position), velocity_(velocity) {
  assert(area.Contains(position) && "start position outside the area");
}

Leg ConstantVelocity::NextLeg(const Leg* previous) {
  const Time start = previous == nullptr ? 0.0 : previous->end;
  const Vec2 from = previous == nullptr ? start_position_ : previous->to;

  if (velocity_.x == 0.0 && velocity_.y == 0.0) {
    return Leg{start, start + 3600.0, from, from};
  }

  // Time until each wall is hit along the current heading.
  auto time_to_wall = [](double pos, double vel, double lo, double hi) {
    if (vel > 0.0) return (hi - pos) / vel;
    if (vel < 0.0) return (lo - pos) / vel;
    return std::numeric_limits<double>::infinity();
  };
  const double tx =
      time_to_wall(from.x, velocity_.x, area_.min.x, area_.max.x);
  const double ty =
      time_to_wall(from.y, velocity_.y, area_.min.y, area_.max.y);
  double dt = std::min(tx, ty);
  // Numerical safety: when starting exactly on a wall moving inward, dt can
  // be 0 for the other axis; bound below to keep making progress.
  dt = std::max(dt, 1e-9);

  const Vec2 to = area_.Clamp(from + velocity_ * dt);
  // Reflect whichever components hit a wall.
  if (tx <= ty) velocity_.x = -velocity_.x;
  if (ty <= tx) velocity_.y = -velocity_.y;
  return Leg{start, start + dt, from, to};
}

}  // namespace madnet::mobility
