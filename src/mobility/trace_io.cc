// Copyright (c) 2026 madnet authors. All rights reserved.

#include "mobility/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace madnet::mobility {

namespace {
constexpr char kMagic[] = "madnet-trace";
constexpr int kVersion = 1;
}  // namespace

[[nodiscard]]
Status SaveTraces(const std::string& path, const TraceSet& traces) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::IoError("cannot open " + path);
  out << kMagic << ' ' << kVersion << '\n';
  char line[160];
  for (const auto& [id, trace] : traces) {
    out << "node " << id << ' ' << trace.legs().size() << '\n';
    for (const Leg& leg : trace.legs()) {
      // %.17g round-trips doubles exactly.
      std::snprintf(line, sizeof(line),
                    "%.17g %.17g %.17g %.17g %.17g %.17g\n", leg.start,
                    leg.end, leg.from.x, leg.from.y, leg.to.x, leg.to.y);
      out << line;
    }
  }
  out.close();
  if (out.fail()) return Status::IoError("failed writing " + path);
  return Status::Ok();
}

[[nodiscard]] StatusOr<TraceSet> LoadTraces(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::IoError("cannot open " + path);

  std::string line;
  // Header.
  do {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("empty trace file");
    }
  } while (Trim(line).empty() || Trim(line)[0] == '#');
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kMagic || version != kVersion) {
      return Status::InvalidArgument("bad trace header: '" + line + "'");
    }
  }

  TraceSet traces;
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream node_line{std::string(trimmed)};
    std::string keyword;
    uint32_t id = 0;
    size_t num_legs = 0;
    node_line >> keyword >> id >> num_legs;
    if (keyword != "node" || node_line.fail()) {
      return Status::InvalidArgument("expected 'node <id> <legs>', got '" +
                                     std::string(trimmed) + "'");
    }
    std::vector<Leg> legs;
    legs.reserve(num_legs);
    for (size_t i = 0; i < num_legs; ++i) {
      if (!std::getline(in, line)) {
        return Status::InvalidArgument("truncated trace for node " +
                                       std::to_string(id));
      }
      std::istringstream leg_line(line);
      Leg leg;
      leg_line >> leg.start >> leg.end >> leg.from.x >> leg.from.y >>
          leg.to.x >> leg.to.y;
      if (leg_line.fail()) {
        return Status::InvalidArgument("bad leg line: '" + line + "'");
      }
      legs.push_back(leg);
    }
    auto trace = Trace::FromLegs(std::move(legs));
    if (!trace.ok()) return trace.status();
    traces.emplace_back(id, std::move(trace).value());
  }
  return traces;
}

[[nodiscard]]
Status SaveNs2Movements(const std::string& path, const TraceSet& traces) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::IoError("cannot open " + path);
  out << "# madnet export in ns-2 setdest movement format\n";
  char line[200];
  for (const auto& [id, trace] : traces) {
    if (trace.legs().empty()) continue;
    const Vec2 start = trace.legs().front().from;
    std::snprintf(line, sizeof(line),
                  "$node_(%u) set X_ %.6f\n$node_(%u) set Y_ %.6f\n"
                  "$node_(%u) set Z_ 0.000000\n",
                  id, start.x, id, start.y, id);
    out << line;
    for (const Leg& leg : trace.legs()) {
      if (leg.from == leg.to) continue;  // Pause: implicit in setdest.
      const double speed = leg.Velocity().Norm();
      std::snprintf(line, sizeof(line),
                    "$ns_ at %.6f \"$node_(%u) setdest %.6f %.6f %.6f\"\n",
                    leg.start, id, leg.to.x, leg.to.y, speed);
      out << line;
    }
  }
  out.close();
  if (out.fail()) return Status::IoError("failed writing " + path);
  return Status::Ok();
}

}  // namespace madnet::mobility
