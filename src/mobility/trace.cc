// Copyright (c) 2026 madnet authors. All rights reserved.

#include "mobility/trace.h"

namespace madnet::mobility {

Trace Trace::Record(MobilityModel* model, Time horizon) {
  model->EnsureHorizon(horizon);
  return Trace(model->legs());
}

StatusOr<Trace> Trace::FromLegs(std::vector<Leg> legs) {
  if (legs.empty()) return Status::InvalidArgument("trace has no legs");
  if (legs.front().start != 0.0) {
    return Status::InvalidArgument("trace must start at time 0");
  }
  for (size_t i = 0; i < legs.size(); ++i) {
    if (legs[i].end < legs[i].start) {
      return Status::InvalidArgument("trace leg runs backwards in time");
    }
    if (i > 0) {
      if (legs[i].start != legs[i - 1].end) {
        return Status::InvalidArgument("trace legs do not abut in time");
      }
      if (!(legs[i].from == legs[i - 1].to)) {
        return Status::InvalidArgument("trace legs do not abut in space");
      }
    }
  }
  return Trace(std::move(legs));
}

Leg TraceReplay::NextLeg(const Leg* previous) {
  if (next_ < trace_.legs().size()) return trace_.legs()[next_++];
  // Past the horizon: stay at the final position.
  const Time start = previous == nullptr ? 0.0 : previous->end;
  const Vec2 at = previous == nullptr ? Vec2{0.0, 0.0} : previous->to;
  return Leg{start, start + 3600.0, at, at};
}

}  // namespace madnet::mobility
