// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Deterministic straight-line mobility with boundary reflection. Used by
// tests (exact positions are predictable) and by examples that want
// scripted motion (e.g. a vehicle driving past a shop).

#ifndef MADNET_MOBILITY_CONSTANT_VELOCITY_H_
#define MADNET_MOBILITY_CONSTANT_VELOCITY_H_

#include "mobility/mobility_model.h"

namespace madnet::mobility {

/// Moves in a straight line at constant speed, reflecting off the walls of
/// a rectangular area like a billiard ball. A zero velocity yields a
/// stationary node.
class ConstantVelocity : public MobilityModel {
 public:
  /// Starts at `position` moving with `velocity` (m/s) inside `area`.
  /// `position` must lie inside `area`.
  ConstantVelocity(const Rect& area, const Vec2& position,
                   const Vec2& velocity);

 protected:
  Leg NextLeg(const Leg* previous) override;

 private:
  Rect area_;
  Vec2 start_position_;
  Vec2 velocity_;  // Current direction; components flip on reflection.
};

/// A node that never moves; convenience for issuers and tests.
class Stationary : public MobilityModel {
 public:
  explicit Stationary(const Vec2& position) : position_(position) {}

 protected:
  Leg NextLeg(const Leg* previous) override {
    const Time start = previous == nullptr ? 0.0 : previous->end;
    // Long stationary legs; extended on demand.
    return Leg{start, start + 3600.0, position_, position_};
  }

 private:
  Vec2 position_;
};

}  // namespace madnet::mobility

#endif  // MADNET_MOBILITY_CONSTANT_VELOCITY_H_
