// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Text-file persistence for mobility traces (the role ns-2's `setdest`
// movement files played for the paper): record a whole scenario's
// trajectories once, replay them under any protocol or parameter setting.
//
// Format ("madnet trace v1"), line-oriented, '#' comments allowed:
//
//   madnet-trace 1
//   node <id> <num_legs>
//   <start> <end> <from_x> <from_y> <to_x> <to_y>     (num_legs lines)
//   node <id> <num_legs>
//   ...

#ifndef MADNET_MOBILITY_TRACE_IO_H_
#define MADNET_MOBILITY_TRACE_IO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mobility/trace.h"
#include "util/status.h"

namespace madnet::mobility {

/// A scenario's worth of traces: (node id, trajectory) pairs.
using TraceSet = std::vector<std::pair<uint32_t, Trace>>;

/// Writes a trace set to `path`. Overwrites. IoError on filesystem
/// problems.
[[nodiscard]]
Status SaveTraces(const std::string& path, const TraceSet& traces);

/// Reads a trace set from `path`. Validates the header, leg counts, and
/// leg continuity (via Trace::FromLegs).
[[nodiscard]] StatusOr<TraceSet> LoadTraces(const std::string& path);

/// Writes the traces in the ns-2 `setdest` movement-file dialect the paper
/// used with ns-2 ("$node_(i) set X_ ..." plus "$ns_ at t \"$node_(i)
/// setdest x y speed\"" lines), for interop with ns-2 tooling. Pause legs
/// are implicit (no setdest is emitted while a node rests). Export only.
[[nodiscard]]
Status SaveNs2Movements(const std::string& path, const TraceSet& traces);

}  // namespace madnet::mobility

#endif  // MADNET_MOBILITY_TRACE_IO_H_
