// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Mobility trace record / replay: captures any model's legs up to a
// horizon, and replays them later as a mobility model of its own. Useful
// for running different protocols over the *identical* movement pattern
// (paired comparison, as the paper does across its five methods).

#ifndef MADNET_MOBILITY_TRACE_H_
#define MADNET_MOBILITY_TRACE_H_

#include <vector>

#include "mobility/mobility_model.h"
#include "util/status.h"

namespace madnet::mobility {

/// An immutable recorded trajectory.
class Trace {
 public:
  /// Records `model`'s legs covering [0, horizon].
  static Trace Record(MobilityModel* model, Time horizon);

  /// Builds a trace from explicit legs. Legs must abut in time and space
  /// and start at time 0 (InvalidArgument otherwise).
  [[nodiscard]] static StatusOr<Trace> FromLegs(std::vector<Leg> legs);

  const std::vector<Leg>& legs() const { return legs_; }

  /// End time of the last recorded leg.
  Time Horizon() const { return legs_.empty() ? 0.0 : legs_.back().end; }

 private:
  explicit Trace(std::vector<Leg> legs) : legs_(std::move(legs)) {}
  std::vector<Leg> legs_;
};

/// A mobility model that replays a Trace. Queries beyond the trace horizon
/// keep the node at its final position.
class TraceReplay : public MobilityModel {
 public:
  explicit TraceReplay(Trace trace) : trace_(std::move(trace)), next_(0) {}

 protected:
  Leg NextLeg(const Leg* previous) override;

 private:
  Trace trace_;
  size_t next_;
};

}  // namespace madnet::mobility

#endif  // MADNET_MOBILITY_TRACE_H_
