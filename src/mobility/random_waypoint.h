// Copyright (c) 2026 madnet authors. All rights reserved.
//
// The Random Waypoint mobility model used by the paper's evaluation: each
// peer starts at a uniform random position, repeatedly picks a uniform
// random destination in the area, travels there in a straight line at a
// constant speed drawn per leg, pauses, and repeats.

#ifndef MADNET_MOBILITY_RANDOM_WAYPOINT_H_
#define MADNET_MOBILITY_RANDOM_WAYPOINT_H_

#include "mobility/mobility_model.h"
#include "util/random.h"

namespace madnet::mobility {

/// Random Waypoint over a rectangular area.
class RandomWaypoint : public MobilityModel {
 public:
  /// Model parameters. The paper's Table II setting is speed uniform in
  /// [mean - delta, mean + delta] = 10 +- 5 m/s.
  struct Options {
    Rect area{{0.0, 0.0}, {5000.0, 5000.0}};  ///< Movement area, metres.
    double min_speed_mps = 5.0;               ///< Per-leg speed lower bound.
    double max_speed_mps = 15.0;              ///< Per-leg speed upper bound.
    double min_pause_s = 0.0;                 ///< Pause lower bound.
    double max_pause_s = 10.0;                ///< Pause upper bound.
  };

  /// Creates a model; all randomness (start position, waypoints, speeds,
  /// pauses) comes deterministically from `rng`.
  RandomWaypoint(const Options& options, Rng rng);

  const Options& options() const { return options_; }

 protected:
  Leg NextLeg(const Leg* previous) override;

 private:
  Options options_;
  Rng rng_;
  bool pause_next_ = false;  // Alternate travel leg / pause leg.
};

}  // namespace madnet::mobility

#endif  // MADNET_MOBILITY_RANDOM_WAYPOINT_H_
