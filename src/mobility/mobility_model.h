// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Mobility substrate. Every model produces a piecewise-linear trajectory —
// a sequence of constant-velocity legs (pauses are legs with from == to).
// The analytic representation gives exact positions and velocities at any
// instant and, crucially, exact advertising-area entry/exit times
// (util/geometry.h SegmentCircleCrossing), which the metrics pipeline uses
// instead of sampling. This replaces ns-2's `setdest` trace machinery.

#ifndef MADNET_MOBILITY_MOBILITY_MODEL_H_
#define MADNET_MOBILITY_MOBILITY_MODEL_H_

#include <vector>

#include "sim/event_queue.h"
#include "util/geometry.h"

namespace madnet::mobility {

using sim::Time;

/// One constant-velocity segment of a trajectory. A pause is a leg with
/// from == to. Legs abut: leg[i+1].start == leg[i].end and
/// leg[i+1].from == leg[i].to.
struct Leg {
  Time start = 0.0;
  Time end = 0.0;
  Vec2 from;
  Vec2 to;

  /// Duration in seconds (>= 0).
  Time Duration() const { return end - start; }

  /// Velocity vector during the leg (zero for pauses or instant legs).
  Vec2 Velocity() const {
    Time d = Duration();
    if (d <= 0.0) return {0.0, 0.0};
    return (to - from) / d;
  }

  /// Position at time `t`, clamped into [start, end].
  Vec2 PositionAt(Time t) const;
};

/// Base class of all mobility models: an extendable sequence of legs.
/// Queries at time t lazily extend the trajectory (via NextLeg) until it
/// covers t. Not thread-safe; each node owns one model instance.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Exact position at time `t` (>= 0). Times beyond the last generated leg
  /// extend the trajectory deterministically.
  // MADNET_HOT
  Vec2 PositionAt(Time t) {
    // Fast path: `t` strictly inside the cached cursor leg. The expression
    // mirrors Leg::PositionAt exactly; strict interior guarantees d > 0 and
    // s in (0, 1], where the clamp is a no-op, so results are bit-identical
    // to the general path. Boundary times (t == start or t == end) fall
    // through so leg selection stays byte-for-byte with the cursor logic.
    if (cursor_ < legs_.size()) {
      const Leg& leg = legs_[cursor_];
      if (leg.start < t && t < leg.end) {
        const double s = (t - leg.start) / (leg.end - leg.start);
        return leg.from + (leg.to - leg.from) * s;
      }
    }
    return PositionAtSlow(t);
  }

  /// Exact velocity at time `t`. At a leg boundary, the later leg's
  /// velocity is reported.
  Vec2 VelocityAt(Time t);

  /// Extends the trajectory to cover [0, horizon].
  void EnsureHorizon(Time horizon);

  /// All legs generated so far (EnsureHorizon first for a known span).
  const std::vector<Leg>& legs() const { return legs_; }

  /// The leg the cursor cache points at — the leg used by the most recent
  /// query — or nullptr before any query. Legs are immutable once
  /// generated, so callers may mirror the returned leg as a long-lived
  /// position-evaluation cache (see Medium::CachedPositionAt).
  const Leg* CursorLeg() const {
    return cursor_ < legs_.size() ? &legs_[cursor_] : nullptr;
  }

  /// Exact time intervals within [t0, t1] spent inside `circle`.
  /// Overlapping/abutting intervals from consecutive legs are coalesced.
  std::vector<CrossingInterval> CrossingsWithin(const Circle& circle, Time t0,
                                                Time t1);

 protected:
  /// Produces the leg following `previous` (nullptr for the first leg).
  /// Implementations must return a leg starting exactly where the previous
  /// one ended (time and position). Must make progress (end > start) at
  /// least every few calls, or trajectory extension will abort.
  virtual Leg NextLeg(const Leg* previous) = 0;

 private:
  /// Index of the leg containing time `t`, extending as needed.
  size_t LegIndexAt(Time t);

  /// General-path position query backing the inline fast path above.
  Vec2 PositionAtSlow(Time t);

  std::vector<Leg> legs_;
  size_t cursor_ = 0;  // Cache: queries are usually time-monotonic.
};

}  // namespace madnet::mobility

#endif  // MADNET_MOBILITY_MOBILITY_MODEL_H_
