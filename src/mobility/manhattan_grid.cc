// Copyright (c) 2026 madnet authors. All rights reserved.

#include "mobility/manhattan_grid.h"

#include <cassert>
#include <cmath>

namespace madnet::mobility {

ManhattanGrid::ManhattanGrid(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  assert(options.block_size_m > 0.0);
  assert(options.min_speed_mps > 0.0 &&
         options.max_speed_mps >= options.min_speed_mps);
  assert(options.p_straight >= 0.0 && options.p_turn_left >= 0.0 &&
         options.p_turn_right >= 0.0 &&
         options.p_straight + options.p_turn_left + options.p_turn_right <=
             1.0 + 1e-9);
  cols_ = static_cast<int>(
              std::floor(options.area.Width() / options.block_size_m)) +
          1;
  rows_ = static_cast<int>(
              std::floor(options.area.Height() / options.block_size_m)) +
          1;
  assert(cols_ >= 2 && rows_ >= 2 && "area too small for the grid");
}

Vec2 ManhattanGrid::HeadingVector(Heading h) const {
  switch (h) {
    case Heading::kEast: return {1.0, 0.0};
    case Heading::kNorth: return {0.0, 1.0};
    case Heading::kWest: return {-1.0, 0.0};
    case Heading::kSouth: return {0.0, -1.0};
  }
  return {1.0, 0.0};
}

bool ManhattanGrid::InBounds(const Vec2& intersection) const {
  const double eps = 1e-6;
  return intersection.x >= options_.area.min.x - eps &&
         intersection.x <= options_.area.min.x +
                               (cols_ - 1) * options_.block_size_m + eps &&
         intersection.y >= options_.area.min.y - eps &&
         intersection.y <= options_.area.min.y +
                               (rows_ - 1) * options_.block_size_m + eps;
}

ManhattanGrid::Heading ManhattanGrid::ChooseHeading(const Vec2& at,
                                                    Heading current) {
  // Candidate headings in preference classes: straight / left / right /
  // u-turn, thinned down to the ones that stay on the grid.
  const int cur = static_cast<int>(current);
  const Heading straight = current;
  const Heading left = static_cast<Heading>((cur + 1) % 4);
  const Heading right = static_cast<Heading>((cur + 3) % 4);
  const Heading back = static_cast<Heading>((cur + 2) % 4);

  auto feasible = [&](Heading h) {
    return InBounds(at + HeadingVector(h) * options_.block_size_m);
  };

  // Sample by the configured probabilities, then fall through to any
  // feasible direction (boundary handling).
  const double roll = rng_.NextDouble();
  Heading preferred;
  if (roll < options_.p_straight) {
    preferred = straight;
  } else if (roll < options_.p_straight + options_.p_turn_left) {
    preferred = left;
  } else if (roll <
             options_.p_straight + options_.p_turn_left +
                 options_.p_turn_right) {
    preferred = right;
  } else {
    preferred = back;
  }
  if (feasible(preferred)) return preferred;
  for (Heading h : {straight, left, right, back}) {
    if (feasible(h)) return h;
  }
  assert(false && "grid node has no feasible direction");
  return back;
}

Leg ManhattanGrid::NextLeg(const Leg* previous) {
  const Time start = previous == nullptr ? 0.0 : previous->end;
  Vec2 from;
  if (previous == nullptr) {
    // Start at a uniformly random intersection.
    const int col = static_cast<int>(rng_.NextUint64(cols_));
    const int row = static_cast<int>(rng_.NextUint64(rows_));
    from = {options_.area.min.x + col * options_.block_size_m,
            options_.area.min.y + row * options_.block_size_m};
    heading_ = static_cast<Heading>(rng_.NextUint64(4));
  } else {
    from = previous->to;
  }

  heading_ = ChooseHeading(from, heading_);
  const Vec2 to = from + HeadingVector(heading_) * options_.block_size_m;
  const double speed =
      rng_.Uniform(options_.min_speed_mps, options_.max_speed_mps);
  const Time duration = options_.block_size_m / speed;
  return Leg{start, start + duration, from, to};
}

}  // namespace madnet::mobility
