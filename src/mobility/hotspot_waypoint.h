// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Hotspot-biased waypoint mobility (extension): like Random Waypoint, but
// a configurable fraction of waypoints is drawn around attraction points
// (shops, petrol stations, intersections) instead of uniformly. This
// matches the paper's motivating scenarios — people *head to* the
// supermarket — and produces the centre-heavy densities real advertising
// areas see.

#ifndef MADNET_MOBILITY_HOTSPOT_WAYPOINT_H_
#define MADNET_MOBILITY_HOTSPOT_WAYPOINT_H_

#include <vector>

#include "mobility/mobility_model.h"
#include "util/random.h"

namespace madnet::mobility {

/// Random-waypoint variant with attraction points.
class HotspotWaypoint : public MobilityModel {
 public:
  /// One attraction point: waypoints near it are normally distributed
  /// with the given spread; `weight` sets its share among hotspots.
  struct Hotspot {
    Vec2 center;
    double sigma_m = 100.0;
    double weight = 1.0;
  };

  struct Options {
    Rect area{{0.0, 0.0}, {5000.0, 5000.0}};
    double min_speed_mps = 5.0;
    double max_speed_mps = 15.0;
    double min_pause_s = 0.0;
    double max_pause_s = 10.0;
    /// Probability that a waypoint targets a hotspot (vs uniform).
    double hotspot_probability = 0.7;
    std::vector<Hotspot> hotspots;  ///< Must be non-empty if probability>0.
  };

  HotspotWaypoint(const Options& options, Rng rng);

  const Options& options() const { return options_; }

 protected:
  Leg NextLeg(const Leg* previous) override;

 private:
  /// Draws the next destination (hotspot-biased or uniform), inside area.
  Vec2 NextWaypoint();

  Options options_;
  Rng rng_;
  std::vector<double> cumulative_weights_;
  bool pause_next_ = false;
};

}  // namespace madnet::mobility

#endif  // MADNET_MOBILITY_HOTSPOT_WAYPOINT_H_
