// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Manhattan-grid mobility (extension beyond the paper's Random Waypoint):
// peers move along the streets of a regular grid, turning at intersections
// with configurable probabilities. This models the urban vehicle scenario
// the paper's introduction motivates (petrol stations, supermarkets).

#ifndef MADNET_MOBILITY_MANHATTAN_GRID_H_
#define MADNET_MOBILITY_MANHATTAN_GRID_H_

#include "mobility/mobility_model.h"
#include "util/random.h"

namespace madnet::mobility {

/// Movement constrained to the lines x = i*block and y = j*block of a
/// square area. Each leg runs from one intersection to an adjacent one;
/// at intersections the peer continues straight, turns left, or turns
/// right, with the given probabilities (u-turns take the leftover mass,
/// and are forced at the area boundary when no other option remains).
class ManhattanGrid : public MobilityModel {
 public:
  struct Options {
    Rect area{{0.0, 0.0}, {5000.0, 5000.0}};  ///< Must be grid-aligned.
    double block_size_m = 500.0;              ///< Street spacing.
    double min_speed_mps = 5.0;
    double max_speed_mps = 15.0;
    double p_straight = 0.5;   ///< Probability of continuing straight.
    double p_turn_left = 0.25;
    double p_turn_right = 0.25;
  };

  ManhattanGrid(const Options& options, Rng rng);

  const Options& options() const { return options_; }

 protected:
  Leg NextLeg(const Leg* previous) override;

 private:
  /// Axis-aligned unit headings.
  enum class Heading { kEast = 0, kNorth = 1, kWest = 2, kSouth = 3 };

  Vec2 HeadingVector(Heading h) const;
  bool InBounds(const Vec2& intersection) const;
  /// Picks the next heading at an intersection, respecting boundaries.
  Heading ChooseHeading(const Vec2& at, Heading current);

  Options options_;
  Rng rng_;
  Heading heading_ = Heading::kEast;
  int cols_ = 0;  // Number of intersections per row.
  int rows_ = 0;
};

}  // namespace madnet::mobility

#endif  // MADNET_MOBILITY_MANHATTAN_GRID_H_
