// Copyright (c) 2026 madnet authors. All rights reserved.

#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace madnet::stats {

void Summary::Add(double value) {
  // Reached only via the Trace::Sample / InterestGenerator::Sample name
  // collision; summaries take one sample per run, not per event.
  // NOLINTNEXTLINE(madnet-hot-transitive-alloc): call-graph name collision.
  values_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

double Summary::Mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double Summary::Stddev() const {
  if (values_.size() < 2) return 0.0;
  const double mean = Mean();
  double ss = 0.0;
  for (double v : values_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double Summary::ConfidenceInterval95() const {
  if (values_.size() < 2) return 0.0;
  return 1.96 * Stddev() / std::sqrt(static_cast<double>(values_.size()));
}

void Summary::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Summary::Min() const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  return sorted_.front();
}

double Summary::Max() const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  return sorted_.back();
}

double Summary::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Summary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f sd=%.3f min=%.3f p50=%.3f max=%.3f",
                Count(), Mean(), Stddev(), Min(), Percentile(50.0), Max());
  return buf;
}

}  // namespace madnet::stats
