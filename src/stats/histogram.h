// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Fixed-bin histogram, for delivery-time distributions in examples and
// benches.

#ifndef MADNET_STATS_HISTOGRAM_H_
#define MADNET_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace madnet::stats {

/// Equal-width bins over [lo, hi) with under/overflow buckets.
class Histogram {
 public:
  /// Creates `num_bins` equal-width bins spanning [lo, hi). Requires
  /// hi > lo and num_bins >= 1.
  Histogram(double lo, double hi, int num_bins);

  /// Records one sample.
  void Add(double value);

  /// Count in bin `i` (0-based). Requires 0 <= i < num_bins().
  uint64_t BinCount(int i) const;

  /// Samples below lo / at-or-above hi.
  uint64_t Underflow() const { return underflow_; }
  uint64_t Overflow() const { return overflow_; }

  /// Total samples recorded.
  uint64_t TotalCount() const { return total_; }

  /// Inclusive lower edge of bin i.
  double BinLow(int i) const;

  int num_bins() const { return static_cast<int>(bins_.size()); }

  /// ASCII bar rendering, one bin per line.
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> bins_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace madnet::stats

#endif  // MADNET_STATS_HISTOGRAM_H_
