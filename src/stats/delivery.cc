// Copyright (c) 2026 madnet authors. All rights reserved.

#include "stats/delivery.h"

#include <algorithm>

namespace madnet::stats {

AreaTracker::AreaTracker(const Circle& area, Time window_start,
                         Time window_end)
    : area_(area), window_start_(window_start), window_end_(window_end) {}

void AreaTracker::Observe(NodeId id, MobilityModel* mobility) {
  Transit transit;
  transit.intervals =
      mobility->CrossingsWithin(area_, window_start_, window_end_);
  if (transit.Passed()) ++passed_count_;
  transits_[id] = std::move(transit);
}

const Transit* AreaTracker::TransitOf(NodeId id) const {
  auto it = transits_.find(id);
  return it == transits_.end() ? nullptr : &it->second;
}

void DeliveryLog::RecordReceipt(AdKey ad, NodeId peer, Time when) {
  auto& receipts = first_receipt_[ad];
  auto [it, inserted] = receipts.try_emplace(peer, when);
  if (!inserted) it->second = std::min(it->second, when);
}

Time DeliveryLog::FirstReceipt(AdKey ad, NodeId peer) const {
  auto ad_it = first_receipt_.find(ad);
  if (ad_it == first_receipt_.end()) return -1.0;
  auto peer_it = ad_it->second.find(peer);
  if (peer_it == ad_it->second.end()) return -1.0;
  return peer_it->second;
}

size_t DeliveryLog::ReceiverCount(AdKey ad) const {
  auto it = first_receipt_.find(ad);
  return it == first_receipt_.end() ? 0 : it->second.size();
}

DeliveryReport ComputeDeliveryReport(const AreaTracker& tracker,
                                     const DeliveryLog& log, AdKey ad) {
  DeliveryReport report;
  for (const auto& [peer, transit] : tracker.transits()) {
    if (!transit.Passed()) continue;
    ++report.peers_passed;
    const Time receipt = log.FirstReceipt(ad, peer);
    if (receipt < 0.0 || receipt > transit.LastExit()) continue;
    ++report.peers_delivered;
    report.delivery_times.Add(std::max(0.0, receipt - transit.FirstEnter()));
  }
  return report;
}

}  // namespace madnet::stats
