// Copyright (c) 2026 madnet authors. All rights reserved.

#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace madnet::stats {

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / num_bins), bins_(num_bins, 0) {
  assert(hi > lo && num_bins >= 1);
}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
  } else if (value >= hi_) {
    ++overflow_;
  } else {
    int bin = static_cast<int>((value - lo_) / width_);
    bin = std::min(bin, num_bins() - 1);  // Rounding guard at the top edge.
    ++bins_[bin];
  }
}

uint64_t Histogram::BinCount(int i) const {
  assert(i >= 0 && i < num_bins());
  return bins_[i];
}

double Histogram::BinLow(int i) const { return lo_ + width_ * i; }

std::string Histogram::ToString() const {
  uint64_t peak = 1;
  for (uint64_t c : bins_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (int i = 0; i < num_bins(); ++i) {
    const int bar = static_cast<int>(bins_[i] * 50 / peak);
    std::snprintf(line, sizeof(line), "[%10.2f, %10.2f) %8llu |%.*s\n",
                  BinLow(i), BinLow(i) + width_,
                  static_cast<unsigned long long>(bins_[i]), bar,
                  "##################################################");
    out += line;
  }
  if (underflow_ != 0 || overflow_ != 0) {
    std::snprintf(line, sizeof(line), "underflow=%llu overflow=%llu\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace madnet::stats
