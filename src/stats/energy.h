// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Radio energy model (extension): converts a node's frame/byte counters
// into consumed energy using a linear per-frame + per-byte cost, the
// standard form fitted by Feeney & Nilsson's 802.11 measurements. The
// paper motivates the optimizations with scarce bandwidth and device
// resources; this makes the battery cost of each method comparable.

#ifndef MADNET_STATS_ENERGY_H_
#define MADNET_STATS_ENERGY_H_

#include <cstdint>

namespace madnet::stats {

/// Linear radio energy model: cost = frames * per_frame + bytes * per_byte,
/// separately for transmit and receive. Defaults approximate a 2 Mb/s
/// 802.11 radio (Feeney & Nilsson, INFOCOM 2001): broadcast tx ~= 266 uJ +
/// 2.1 uJ/B, broadcast rx ~= 56 uJ + 0.26 uJ/B.
struct EnergyModel {
  double tx_per_frame_j = 266e-6;
  double tx_per_byte_j = 2.1e-6;
  double rx_per_frame_j = 56e-6;
  double rx_per_byte_j = 0.26e-6;
};

/// Energy one node consumed, given its radio counters.
double NodeEnergyJoules(uint64_t frames_sent, uint64_t bytes_sent,
                        uint64_t frames_received, uint64_t bytes_received,
                        const EnergyModel& model = {});

}  // namespace madnet::stats

#endif  // MADNET_STATS_ENERGY_H_
