// Copyright (c) 2026 madnet authors. All rights reserved.
//
// A sampled time series: (time, value) points appended in time order, with
// helpers for rendering and for windowed aggregation. Used by the coverage
// instrumentation that demonstrates the propagation-model requirements of
// Section III (dense inside the advertising area, shrink over age).

#ifndef MADNET_STATS_TIMESERIES_H_
#define MADNET_STATS_TIMESERIES_H_

#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "util/status.h"

namespace madnet::stats {

using sim::Time;

/// An append-only series of timestamped samples.
class TimeSeries {
 public:
  struct Sample {
    Time time = 0.0;
    double value = 0.0;
  };

  /// Creates a series with a label (used in rendered output).
  explicit TimeSeries(std::string label = "");

  /// Appends a sample. Times must be non-decreasing (InvalidArgument
  /// otherwise).
  [[nodiscard]] Status Add(Time time, double value);

  /// Number of samples.
  size_t Size() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

  /// The i-th sample (0-based, time order).
  const Sample& At(size_t i) const { return samples_[i]; }

  /// All samples.
  const std::vector<Sample>& samples() const { return samples_; }

  /// Value at `time` by step interpolation (value of the latest sample at
  /// or before `time`); 0 before the first sample or when empty.
  double ValueAt(Time time) const;

  /// Mean of samples with time in [t0, t1]; 0 if none.
  double MeanOver(Time t0, Time t1) const;

  /// Largest sample value; 0 when empty.
  double MaxValue() const;

  const std::string& label() const { return label_; }

 private:
  std::string label_;
  std::vector<Sample> samples_;
};

}  // namespace madnet::stats

#endif  // MADNET_STATS_TIMESERIES_H_
