// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Instantaneous connectivity analysis of a node placement under unit-disk
// radios: average degree, connected components, and the giant-component
// fraction. This is the structural quantity behind the paper's sparse/dense
// regimes — Figure 7's behaviour flips around the percolation point, and
// bench/connectivity documents where that lies for the Table-II geometry.

#ifndef MADNET_STATS_CONNECTIVITY_H_
#define MADNET_STATS_CONNECTIVITY_H_

#include <vector>

#include "util/geometry.h"

namespace madnet::stats {

/// Summary of one placement's radio graph.
struct ConnectivitySnapshot {
  size_t nodes = 0;
  size_t edges = 0;                        ///< Unordered in-range pairs.
  double average_degree = 0.0;             ///< 2 * edges / nodes.
  size_t components = 0;                   ///< Connected components.
  double largest_component_fraction = 0.0; ///< |giant| / nodes.
};

/// Analyzes the unit-disk graph over `positions` with transmission range
/// `range_m` (inclusive). O(n^2) pair scan with a grid prefilter; fine for
/// the scenario sizes used here.
ConnectivitySnapshot AnalyzeConnectivity(const std::vector<Vec2>& positions,
                                         double range_m);

}  // namespace madnet::stats

#endif  // MADNET_STATS_CONNECTIVITY_H_
