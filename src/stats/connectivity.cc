// Copyright (c) 2026 madnet authors. All rights reserved.

#include "stats/connectivity.h"

#include <algorithm>
#include <numeric>

namespace madnet::stats {

namespace {

/// Plain union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

  size_t ComponentSize(size_t x) { return size_[Find(x)]; }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace

ConnectivitySnapshot AnalyzeConnectivity(const std::vector<Vec2>& positions,
                                         double range_m) {
  ConnectivitySnapshot snapshot;
  snapshot.nodes = positions.size();
  if (positions.empty()) return snapshot;

  const double r2 = range_m * range_m;
  UnionFind forest(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    for (size_t j = i + 1; j < positions.size(); ++j) {
      // Cheap axis prefilter before the full distance check.
      if (std::abs(positions[i].x - positions[j].x) > range_m) continue;
      if (DistanceSquared(positions[i], positions[j]) <= r2) {
        ++snapshot.edges;
        forest.Union(i, j);
      }
    }
  }
  snapshot.average_degree =
      2.0 * static_cast<double>(snapshot.edges) / positions.size();

  size_t largest = 0;
  size_t components = 0;
  for (size_t i = 0; i < positions.size(); ++i) {
    if (forest.Find(i) == i) {
      ++components;
      largest = std::max(largest, forest.ComponentSize(i));
    }
  }
  snapshot.components = components;
  snapshot.largest_component_fraction =
      static_cast<double>(largest) / positions.size();
  return snapshot;
}

}  // namespace madnet::stats
