// Copyright (c) 2026 madnet authors. All rights reserved.
//
// The paper's three evaluation metrics (Section IV):
//
//   Delivery Rate  — fraction of peers that received the advertisement
//                    among peers that passed through the advertising area
//                    during the ad's life cycle.
//   Delivery Time  — per delivered peer, time from entering the advertising
//                    area until receiving the ad (zero if the peer already
//                    carried it when entering).
//   Messages       — total broadcast frames, read from MediumStats.
//
// AreaTracker computes exact per-peer transit intervals analytically from
// the mobility legs (no sampling error); DeliveryLog records first receipt
// per (ad, peer); ComputeDeliveryReport combines them.

#ifndef MADNET_STATS_DELIVERY_H_
#define MADNET_STATS_DELIVERY_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/receipt_sink.h"
#include "mobility/mobility_model.h"
#include "net/packet.h"
#include "stats/summary.h"
#include "util/geometry.h"

namespace madnet::stats {

using mobility::MobilityModel;
using net::NodeId;
using sim::Time;

/// Key identifying one advertisement across the metrics pipeline (the
/// protocols use issuer-id << 32 | sequence; see core/advertisement.h).
using AdKey = uint64_t;

/// A peer's passage(s) through an advertising area during a time window.
struct Transit {
  /// Transit intervals, clipped to the observation window, time-ordered.
  std::vector<CrossingInterval> intervals;

  /// True iff the peer was inside the area at some point in the window.
  bool Passed() const { return !intervals.empty(); }

  /// First instant inside (requires Passed()).
  Time FirstEnter() const { return intervals.front().enter; }

  /// Last instant inside (requires Passed()).
  Time LastExit() const { return intervals.back().exit; }
};

/// Computes exact advertising-area transits for a set of peers.
class AreaTracker {
 public:
  /// Tracks passage through `area` during [window_start, window_end] — the
  /// advertising area over the ad's life cycle. The area radius is the
  /// *initial* advertising radius R; the late-life shrink of R_t only
  /// matters in the final moments before expiry (see DESIGN.md).
  AreaTracker(const Circle& area, Time window_start, Time window_end);

  /// Computes and stores the transit of `id` moving along `mobility`.
  void Observe(NodeId id, MobilityModel* mobility);

  /// The transit of an observed peer; nullptr if never observed.
  const Transit* TransitOf(NodeId id) const;

  /// Number of observed peers that passed through the area.
  size_t PassedCount() const { return passed_count_; }

  /// Number of peers observed.
  size_t ObservedCount() const { return transits_.size(); }

  /// All observed transits, keyed by peer, in ascending id order.
  /// Ordered on purpose: ComputeDeliveryReport folds floating-point sums
  /// over this map, and aggregation paths must iterate deterministically
  /// (see docs/STATIC_ANALYSIS.md, rule madnet-unordered-iteration).
  const std::map<NodeId, Transit>& transits() const { return transits_; }

  const Circle& area() const { return area_; }
  Time window_start() const { return window_start_; }
  Time window_end() const { return window_end_; }

 private:
  Circle area_;
  Time window_start_;
  Time window_end_;
  std::map<NodeId, Transit> transits_;
  size_t passed_count_ = 0;
};

/// Records the first time each peer received each advertisement. Implements
/// core::ReceiptSink so protocols can report receipts without src/core
/// depending on src/stats (see core/receipt_sink.h).
class DeliveryLog : public core::ReceiptSink {
 public:
  /// Records a receipt; keeps only the earliest per (ad, peer).
  void RecordReceipt(AdKey ad, NodeId peer, Time when) override;

  /// First receipt time, or negative if the peer never received the ad.
  Time FirstReceipt(AdKey ad, NodeId peer) const;

  /// Number of distinct peers that received `ad`.
  size_t ReceiverCount(AdKey ad) const;

 private:
  // Point-queried only (find/size, never iterated), so hashing is safe
  // here and keeps RecordReceipt O(1) on the per-delivery hot path.
  std::unordered_map<AdKey, std::unordered_map<NodeId, Time>> first_receipt_;
};

/// Aggregated per-advertisement results in the paper's terms.
struct DeliveryReport {
  uint64_t peers_passed = 0;     ///< Denominator of Delivery Rate.
  uint64_t peers_delivered = 0;  ///< Numerator of Delivery Rate.
  Summary delivery_times;        ///< Seconds, one sample per delivered peer.

  /// Delivery Rate in percent (100 * delivered / passed); 0 if none passed.
  double DeliveryRatePercent() const {
    if (peers_passed == 0) return 0.0;
    return 100.0 * static_cast<double>(peers_delivered) /
           static_cast<double>(peers_passed);
  }

  /// Mean Delivery Time in seconds over delivered peers.
  double MeanDeliveryTime() const { return delivery_times.Mean(); }
};

/// Combines transits and receipts. A peer counts as *delivered* if it
/// passed through the area and its first receipt is no later than its last
/// exit from the area within the window (receiving after finally leaving
/// cannot help a passing user). Its delivery time is
/// max(0, first_receipt - first_enter): peers that were handed the ad
/// before entering (store & forward) score zero.
DeliveryReport ComputeDeliveryReport(const AreaTracker& tracker,
                                     const DeliveryLog& log, AdKey ad);

}  // namespace madnet::stats

#endif  // MADNET_STATS_DELIVERY_H_
