// Copyright (c) 2026 madnet authors. All rights reserved.

#include "stats/energy.h"

namespace madnet::stats {

double NodeEnergyJoules(uint64_t frames_sent, uint64_t bytes_sent,
                        uint64_t frames_received, uint64_t bytes_received,
                        const EnergyModel& model) {
  return static_cast<double>(frames_sent) * model.tx_per_frame_j +
         static_cast<double>(bytes_sent) * model.tx_per_byte_j +
         static_cast<double>(frames_received) * model.rx_per_frame_j +
         static_cast<double>(bytes_received) * model.rx_per_byte_j;
}

}  // namespace madnet::stats
