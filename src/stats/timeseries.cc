// Copyright (c) 2026 madnet authors. All rights reserved.

#include "stats/timeseries.h"

#include <algorithm>

namespace madnet::stats {

TimeSeries::TimeSeries(std::string label) : label_(std::move(label)) {}

Status TimeSeries::Add(Time time, double value) {
  if (!samples_.empty() && time < samples_.back().time) {
    return Status::InvalidArgument("time series must be appended in order");
  }
  // Reached only via the Trace::Sample / InterestGenerator::Sample name
  // collision; series are appended at coarse sampling intervals.
  // NOLINTNEXTLINE(madnet-hot-transitive-alloc): call-graph name collision.
  samples_.push_back(Sample{time, value});
  return Status::Ok();
}

double TimeSeries::ValueAt(Time time) const {
  // Last sample with sample.time <= time.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), time,
      [](Time t, const Sample& s) { return t < s.time; });
  if (it == samples_.begin()) return 0.0;
  return std::prev(it)->value;
}

double TimeSeries::MeanOver(Time t0, Time t1) const {
  double sum = 0.0;
  size_t count = 0;
  for (const Sample& sample : samples_) {
    if (sample.time < t0) continue;
    if (sample.time > t1) break;
    sum += sample.value;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double TimeSeries::MaxValue() const {
  double best = 0.0;
  for (const Sample& sample : samples_) best = std::max(best, sample.value);
  return best;
}

}  // namespace madnet::stats
