// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Order statistics accumulator: mean / stddev / min / max / percentiles
// over a set of samples. Used for delivery times and cross-seed aggregation.

#ifndef MADNET_STATS_SUMMARY_H_
#define MADNET_STATS_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace madnet::stats {

/// Accumulates double samples and answers summary queries. Samples are
/// retained, so percentiles are exact.
class Summary {
 public:
  /// Adds one sample.
  void Add(double value);

  /// Number of samples.
  size_t Count() const { return values_.size(); }

  /// Arithmetic mean; 0 when empty.
  double Mean() const;

  /// Sample standard deviation (n-1 denominator); 0 with < 2 samples.
  double Stddev() const;

  /// Smallest sample; 0 when empty.
  double Min() const;

  /// Largest sample; 0 when empty.
  double Max() const;

  /// Exact p-th percentile via linear interpolation, p in [0, 100];
  /// 0 when empty.
  double Percentile(double p) const;

  /// Sum of all samples.
  double Sum() const { return sum_; }

  /// Half-width of the normal-approximation 95 % confidence interval of
  /// the mean: 1.96 * stddev / sqrt(n). 0 with < 2 samples.
  double ConfidenceInterval95() const;

  /// "n=.. mean=.. sd=.. min=.. p50=.. max=.." for logs.
  std::string ToString() const;

 private:
  /// Sorts the retained samples if new ones arrived since the last query.
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

}  // namespace madnet::stats

#endif  // MADNET_STATS_SUMMARY_H_
