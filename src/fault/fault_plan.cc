// Copyright (c) 2026 madnet authors. All rights reserved.

#include "fault/fault_plan.h"

#include <cmath>

namespace madnet::fault {

Status FaultPlan::Validate() const {
  if (!(churn_rate >= 0.0 && churn_rate <= 1.0)) {
    return Status::InvalidArgument("churn_rate must be in [0, 1]");
  }
  if (ChurnEnabled()) {
    if (!(churn_up_s > 0.0) || !(churn_down_s > 0.0)) {
      return Status::InvalidArgument(
          "churn dwell means (churn_up, churn_down) must be positive");
    }
    if (churn_start_s < 0.0) {
      return Status::InvalidArgument("churn_start must be non-negative");
    }
  }
  if (!(loss_extra >= 0.0 && loss_extra <= 1.0)) {
    return Status::InvalidArgument("loss_extra must be in [0, 1]");
  }
  if (LossEpisodesEnabled()) {
    if (!(loss_episode_s > 0.0)) {
      return Status::InvalidArgument(
          "loss_episode must be positive when loss_extra > 0");
    }
    if (loss_start_s < 0.0 || loss_period_s < 0.0) {
      return Status::InvalidArgument(
          "loss_start and loss_period must be non-negative");
    }
    if (loss_period_s > 0.0 && loss_period_s < loss_episode_s) {
      return Status::InvalidArgument(
          "loss_period must be >= loss_episode (episodes must not overlap)");
    }
  }
  if (outage_rect.Width() < 0.0 || outage_rect.Height() < 0.0) {
    return Status::InvalidArgument("outage rectangle has negative extent");
  }
  if (OutageEnabled()) {
    if (outage_start_s < 0.0 || outage_end_s <= outage_start_s) {
      return Status::InvalidArgument(
          "outage needs 0 <= outage_start < outage_end");
    }
  }
  if (!std::isfinite(churn_rate) || !std::isfinite(churn_up_s) ||
      !std::isfinite(churn_down_s) || !std::isfinite(churn_start_s) ||
      !std::isfinite(loss_extra) || !std::isfinite(loss_episode_s) ||
      !std::isfinite(loss_period_s) || !std::isfinite(loss_start_s) ||
      !std::isfinite(outage_start_s) || !std::isfinite(outage_end_s)) {
    return Status::InvalidArgument("fault plan fields must be finite");
  }
  return Status::Ok();
}

}  // namespace madnet::fault
