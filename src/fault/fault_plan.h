// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Declarative description of every fault a scenario injects. A FaultPlan is
// part of ScenarioConfig: it is parsed/serialized by scenario/config_io,
// hashed into the run manifest, and expanded into concrete simulator events
// by fault::FaultInjector using an RNG stream forked from the replication
// seed — so a fault-laden run is exactly as deterministic (and as
// --jobs-invariant) as a clean one. See docs/FAULTS.md.
//
// Three independent fault families, each off by default:
//
//   * Node churn — a deterministic subset of the mobile peers duty-cycles
//     between online and offline with exponentially distributed dwell
//     times. With `churn_crash`, going down is a crash: the node loses its
//     volatile protocol state (caches / resource memory) and rejoins cold.
//   * Loss episodes — periodic windows during which the medium's random
//     per-receiver loss probability is raised by `loss_extra` (a crowd, a
//     microwave oven, cross-traffic).
//   * Regional outage — a jammer rectangle: while active, receivers inside
//     it decode nothing (a dead mall wing, a garage level).

#ifndef MADNET_FAULT_FAULT_PLAN_H_
#define MADNET_FAULT_FAULT_PLAN_H_

#include "util/geometry.h"
#include "util/status.h"

namespace madnet::fault {

struct FaultPlan {
  // --- Node churn (peers only; the issuer never churns) ---
  /// Probability that a given peer is a churner, in [0, 1]. 0 disables.
  double churn_rate = 0.0;
  /// Mean online dwell time of a churner (exponential; > 0 when churning).
  double churn_up_s = 120.0;
  /// Mean offline dwell time of a churner (exponential; > 0 when churning).
  double churn_down_s = 60.0;
  /// When true, going down is a crash: volatile protocol state is lost.
  bool churn_crash = false;
  /// No churner goes down before this instant.
  double churn_start_s = 0.0;

  // --- Loss episodes (time-varying medium loss) ---
  /// Loss probability added to Medium::Options::loss_probability during an
  /// episode (the sum is clamped to 1). 0 disables episodes.
  double loss_extra = 0.0;
  /// Length of one episode (> 0 when loss_extra > 0).
  double loss_episode_s = 0.0;
  /// Start-to-start spacing of episodes; 0 means a single episode.
  double loss_period_s = 0.0;
  /// First episode's start time.
  double loss_start_s = 0.0;

  // --- Regional outage (jammer rectangle) ---
  /// Jammed region; a zero-area rectangle disables the outage.
  Rect outage_rect{{0.0, 0.0}, {0.0, 0.0}};
  double outage_start_s = 0.0;  ///< Jammer switches on.
  double outage_end_s = 0.0;    ///< Jammer switches off (> start).

  bool ChurnEnabled() const { return churn_rate > 0.0; }
  bool LossEpisodesEnabled() const { return loss_extra > 0.0; }
  bool OutageEnabled() const { return outage_rect.Area() > 0.0; }

  /// True iff any fault family is active. When false, Scenario builds no
  /// injector and the simulation is byte-identical to a plan-less run.
  bool Enabled() const {
    return ChurnEnabled() || LossEpisodesEnabled() || OutageEnabled();
  }

  /// Range/consistency checks; called from ScenarioConfig::Validate().
  [[nodiscard]] Status Validate() const;
};

}  // namespace madnet::fault

#endif  // MADNET_FAULT_FAULT_PLAN_H_
