// Copyright (c) 2026 madnet authors. All rights reserved.

#include "fault/fault_injector.h"

#include "util/logging.h"

namespace madnet::fault {

namespace {
/// Node field of network-wide fault records (loss episodes, outages).
constexpr uint32_t kNetworkWide = 0xFFFFFFFFu;
}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, sim::Simulator* simulator,
                             net::Medium* medium, Rng rng)
    : plan_(plan), simulator_(simulator), medium_(medium), rng_(rng) {
  MADNET_DCHECK(simulator != nullptr && medium != nullptr);
  Status valid = plan.Validate();
  MADNET_DCHECK(valid.ok());
  (void)valid;
}

void FaultInjector::Record(const char* kind, uint32_t node, double value) {
  if (trace_ != nullptr && trace_->Enabled(obs::kTraceFault)) {
    trace_->Fault(simulator_->Now(), node, kind, value);
  }
}

void FaultInjector::Arm(net::NodeId first_node, net::NodeId last_node,
                        Hooks hooks) {
  MADNET_DCHECK(!armed_);  // Arm is once-per-run.
  armed_ = true;
  hooks_ = std::move(hooks);

  if (plan_.ChurnEnabled()) {
    // Churner selection and first-down times are drawn now, in id order,
    // so the schedule is a pure function of (plan, rng seed).
    for (net::NodeId id = first_node; id <= last_node; ++id) {
      if (!rng_.Bernoulli(plan_.churn_rate)) continue;
      churners_.push_back(id);
      const double first_down =
          plan_.churn_start_s + rng_.Exponential(plan_.churn_up_s);
      simulator_->ScheduleAt(first_down, [this, id]() { TakeDown(id); });
    }
  }
  if (plan_.LossEpisodesEnabled()) {
    const double start = plan_.loss_start_s;
    simulator_->ScheduleAt(start,
                           [this, start]() { BeginLossEpisode(start); });
  }
  if (plan_.OutageEnabled()) {
    simulator_->ScheduleAt(plan_.outage_start_s, [this]() { BeginOutage(); });
    simulator_->ScheduleAt(plan_.outage_end_s, [this]() { EndOutage(); });
  }
}

void FaultInjector::TakeDown(net::NodeId id) {
  Status off = medium_->SetOnline(id, false);
  MADNET_DCHECK(off.ok());  // Churners are registered nodes.
  (void)off;
  stats_.node_downs += 1;
  if (plan_.churn_crash) {
    stats_.crashes += 1;
    Record("crash", id, 0.0);
    if (hooks_.on_crash) hooks_.on_crash(id);
  } else {
    Record("down", id, 0.0);
  }
  const double dwell = rng_.Exponential(plan_.churn_down_s);
  simulator_->Schedule(dwell, [this, id]() { BringUp(id); });
}

void FaultInjector::BringUp(net::NodeId id) {
  Status on = medium_->SetOnline(id, true);
  MADNET_DCHECK(on.ok());
  (void)on;
  stats_.node_rejoins += 1;
  Record("up", id, 0.0);
  if (hooks_.on_rejoin) hooks_.on_rejoin(id);
  const double dwell = rng_.Exponential(plan_.churn_up_s);
  simulator_->Schedule(dwell, [this, id]() { TakeDown(id); });
}

void FaultInjector::BeginLossEpisode(double start_time) {
  medium_->SetExtraLoss(plan_.loss_extra);
  stats_.loss_episodes += 1;
  Record("loss_on", kNetworkWide, plan_.loss_extra);
  simulator_->Schedule(plan_.loss_episode_s, [this]() { EndLossEpisode(); });
  if (plan_.loss_period_s > 0.0) {
    // Episodes are periodic; the chain advances lazily, one link per
    // episode, and simply stops executing past the simulation horizon.
    const double next = start_time + plan_.loss_period_s;
    simulator_->ScheduleAt(next, [this, next]() { BeginLossEpisode(next); });
  }
}

void FaultInjector::EndLossEpisode() {
  medium_->SetExtraLoss(0.0);
  Record("loss_off", kNetworkWide, 0.0);
}

void FaultInjector::BeginOutage() {
  medium_->SetJamZones({plan_.outage_rect});
  stats_.outages += 1;
  Record("jam_on", kNetworkWide, plan_.outage_rect.Area());
}

void FaultInjector::EndOutage() {
  medium_->SetJamZones({});
  Record("jam_off", kNetworkWide, 0.0);
}

}  // namespace madnet::fault
