// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Expands a FaultPlan into concrete simulator events against one run's
// Medium and protocol set. The injector owns a dedicated RNG stream forked
// from the replication seed (label "FAUL"), draws from it only inside
// simulator events (whose order is fixed by the deterministic event
// queue), and never touches the medium's or any protocol's stream — so
// enabling faults perturbs nothing else, and a faulted run is bit-identical
// at any --jobs value. One injector serves one Scenario; concurrent
// replications each build their own.

#ifndef MADNET_FAULT_FAULT_INJECTOR_H_
#define MADNET_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_plan.h"
#include "net/medium.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace madnet::fault {

/// Cumulative counts of injected fault events over one run.
struct FaultStats {
  uint64_t node_downs = 0;     ///< Churner off transitions (crashes included).
  uint64_t node_rejoins = 0;   ///< Churner back-online transitions.
  uint64_t crashes = 0;        ///< Downs that also wiped volatile state.
  uint64_t loss_episodes = 0;  ///< Loss-episode windows begun.
  uint64_t outages = 0;        ///< Jammer activations.
};

class FaultInjector {
 public:
  /// Per-node notifications into the protocol layer. Both optional.
  struct Hooks {
    /// The node just crashed (offline + volatile state loss).
    std::function<void(net::NodeId)> on_crash;
    /// The node just came back online (after a crash or a graceful down).
    std::function<void(net::NodeId)> on_rejoin;
  };

  /// `simulator` and `medium` are borrowed and must outlive the injector.
  /// `rng` is this injector's private stream (fork it from the replication
  /// root with a fixed label).
  FaultInjector(const FaultPlan& plan, sim::Simulator* simulator,
                net::Medium* medium, Rng rng);

  /// Optional kTraceFault sink; must outlive the injector or be cleared.
  void SetTrace(obs::Trace* trace) { trace_ = trace; }

  /// Selects the churners among node ids [first_node, last_node] (one
  /// Bernoulli(churn_rate) per id, in id order) and schedules the plan's
  /// initial events. Call exactly once, before the simulation runs.
  void Arm(net::NodeId first_node, net::NodeId last_node, Hooks hooks);

  const FaultStats& stats() const { return stats_; }
  const std::vector<net::NodeId>& churners() const { return churners_; }

 private:
  void TakeDown(net::NodeId id);
  void BringUp(net::NodeId id);
  void BeginLossEpisode(double start_time);
  void EndLossEpisode();
  void BeginOutage();
  void EndOutage();
  void Record(const char* kind, uint32_t node, double value);

  FaultPlan plan_;
  sim::Simulator* simulator_;
  net::Medium* medium_;
  Rng rng_;
  obs::Trace* trace_ = nullptr;
  Hooks hooks_;
  std::vector<net::NodeId> churners_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace madnet::fault

#endif  // MADNET_FAULT_FAULT_INJECTOR_H_
