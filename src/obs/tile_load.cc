// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/tile_load.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace madnet::obs {

namespace {

// A degenerate tile size or a huge area must not turn the dense grid into
// an allocation bomb; 1024 tiles per side (1 MiB of TileStats at 24 B
// each) covers every paper-scale scenario with wide margin.
constexpr int kMaxTilesPerSide = 1024;

}  // namespace

TileLoadMap::TileLoadMap(double tile_m, double area_m) : tile_m_(tile_m) {
  MADNET_DCHECK(tile_m_ > 0.0);
  MADNET_DCHECK(area_m > 0.0);
  if (tile_m_ <= 0.0) tile_m_ = 1.0;
  if (area_m <= 0.0) area_m = tile_m_;
  inv_tile_ = 1.0 / tile_m_;
  const double tiles = std::ceil(area_m / tile_m_);
  side_ = tiles < 1.0 ? 1
                      : tiles > kMaxTilesPerSide
                            ? kMaxTilesPerSide
                            : static_cast<int>(tiles);
  grid_.resize(static_cast<size_t>(side_) * static_cast<size_t>(side_));
}

void TileLoadMap::Summarize(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  uint64_t touched = 0;
  uint64_t broadcasts_max = 0;
  uint64_t deliveries_max = 0;
  // Fixed bounds so histograms from different replications merge; tx
  // counts per tile span a few to a few thousand in the paper-scale
  // scenarios, queue depth is typically single digits.
  FixedHistogram* per_tile_tx = metrics->Histogram(
      "medium.tile.broadcasts",
      {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0});
  FixedHistogram* queue_depth = metrics->Histogram(
      "medium.tile.queue_depth", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  for (const TileStats& tile : grid_) {
    if (tile.broadcasts == 0 && tile.deliveries == 0) continue;
    ++touched;
    if (tile.broadcasts > broadcasts_max) broadcasts_max = tile.broadcasts;
    if (tile.deliveries > deliveries_max) deliveries_max = tile.deliveries;
    per_tile_tx->Observe(static_cast<double>(tile.broadcasts));
    if (tile.broadcasts > 0) {
      queue_depth->Observe(static_cast<double>(tile.queue_depth_sum) /
                           static_cast<double>(tile.broadcasts));
    }
  }
  metrics->SetGauge("medium.tile.count", static_cast<double>(touched));
  metrics->SetGauge("medium.tile.broadcasts_max",
                    static_cast<double>(broadcasts_max));
  metrics->SetGauge("medium.tile.deliveries_max",
                    static_cast<double>(deliveries_max));
}

std::string TileLoadMap::ToJsonl() const {
  std::string out;
  char buf[160];
  for (size_t i = 0; i < grid_.size(); ++i) {
    const TileStats& tile = grid_[i];
    if (tile.broadcasts == 0 && tile.deliveries == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "{\"tx\":%d,\"ty\":%d,\"broadcasts\":%llu,"
                  "\"deliveries\":%llu,\"qdepth_sum\":%llu}\n",
                  static_cast<int>(i % static_cast<size_t>(side_)),
                  static_cast<int>(i / static_cast<size_t>(side_)),
                  static_cast<unsigned long long>(tile.broadcasts),
                  static_cast<unsigned long long>(tile.deliveries),
                  static_cast<unsigned long long>(tile.queue_depth_sum));
    out += buf;
  }
  return out;
}

}  // namespace madnet::obs
