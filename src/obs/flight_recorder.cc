// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace madnet::obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::Note(const FlightRecord& record) {
  ring_[next_] = record;
  next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
  ++total_;
}

size_t FlightRecorder::size() const {
  return total_ < ring_.size() ? static_cast<size_t>(total_) : ring_.size();
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  const size_t count = size();
  out.reserve(count);
  // Oldest note first: when the ring has wrapped the oldest slot is next_.
  const size_t start = total_ < ring_.size() ? 0 : next_;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FormatFlightRecord(const FlightRecord& record) {
  char buf[192];
  switch (record.category) {
    case 0:  // Run header.
      std::snprintf(buf, sizeof(buf),
                    "{\"cat\":\"run\",\"seed\":%llu,\"config\":\"\"}\n",
                    static_cast<unsigned long long>(record.a));
      break;
    case kTraceEvent:
      std::snprintf(buf, sizeof(buf),
                    "{\"cat\":\"event\",\"t\":%.9f,\"seq\":%llu}\n", record.t,
                    static_cast<unsigned long long>(record.a));
      break;
    case kTraceTx:
      std::snprintf(
          buf, sizeof(buf),
          "{\"cat\":\"tx\",\"t\":%.9f,\"node\":%u,\"x\":%.3f,\"y\":%.3f,"
          "\"bytes\":%u,\"seq\":%llu}\n",
          record.t, static_cast<uint32_t>(record.a), record.v, record.w,
          static_cast<uint32_t>(record.b),
          static_cast<unsigned long long>(record.c));
      break;
    case kTraceRx:
      std::snprintf(buf, sizeof(buf),
                    "{\"cat\":\"rx\",\"t\":%.9f,\"from\":%u,\"node\":%u,"
                    "\"bytes\":%u,\"ad\":%llu,\"seq\":%llu}\n",
                    record.t, static_cast<uint32_t>(record.a),
                    static_cast<uint32_t>(record.b),
                    static_cast<uint32_t>(record.v),
                    static_cast<unsigned long long>(record.c),
                    static_cast<unsigned long long>(record.d));
      break;
    case kTraceDeliver:
      std::snprintf(buf, sizeof(buf),
                    "{\"cat\":\"deliver\",\"t\":%.9f,\"node\":%u,\"ad\":%llu,"
                    "\"hop\":%u,\"seq\":%llu,\"parent\":%u}\n",
                    record.t, static_cast<uint32_t>(record.a),
                    static_cast<unsigned long long>(record.b),
                    static_cast<uint32_t>(record.v),
                    static_cast<unsigned long long>(record.c),
                    static_cast<uint32_t>(record.d));
      break;
    case kTraceSuppress:
      std::snprintf(buf, sizeof(buf),
                    "{\"cat\":\"suppress\",\"t\":%.9f,\"node\":%u,\"ad\":%llu,"
                    "\"reason\":\"%s\",\"v\":%.9g}\n",
                    record.t, static_cast<uint32_t>(record.a),
                    static_cast<unsigned long long>(record.b),
                    record.reason != nullptr ? record.reason : "", record.v);
      break;
    case kTraceSketch:
      std::snprintf(buf, sizeof(buf),
                    "{\"cat\":\"sketch\",\"t\":%.9f,\"node\":%u,\"ad\":%llu}\n",
                    record.t, static_cast<uint32_t>(record.a),
                    static_cast<unsigned long long>(record.b));
      break;
    case kTraceFault:
      std::snprintf(buf, sizeof(buf),
                    "{\"cat\":\"fault\",\"t\":%.9f,\"node\":%u,"
                    "\"reason\":\"%s\",\"v\":%.9g}\n",
                    record.t, static_cast<uint32_t>(record.a),
                    record.reason != nullptr ? record.reason : "", record.v);
      break;
    default:
      std::snprintf(buf, sizeof(buf), "{\"cat\":\"?\",\"t\":%.9f}\n",
                    record.t);
      break;
  }
  return buf;
}

std::string FlightRecorder::ToJsonl() const {
  std::string out;
  for (const FlightRecord& record : Snapshot()) {
    out += FormatFlightRecord(record);
  }
  return out;
}

namespace {

struct CrashDumpRegistry {
  std::mutex mutex;
  std::vector<std::pair<FlightRecorder*, uint64_t>> recorders;
  bool hook_installed = false;
};

CrashDumpRegistry& Registry() {
  // Intentionally leaked: the crash hook may fire during static
  // destruction, so the registry must never be destroyed.
  // NOLINTNEXTLINE(madnet-raw-new): leak-on-exit singleton for the crash path.
  static CrashDumpRegistry* registry = new CrashDumpRegistry();
  return *registry;
}

void CrashHookDump(const char* file, int line, const char* expr) {
  char why[256];
  std::snprintf(why, sizeof(why), "%s:%d: MADNET_DCHECK failed: %s", file,
                line, expr);
  const std::string path = DumpPostmortem(why);
  if (!path.empty()) {
    // The process is aborting inside DcheckFail; the locked Logger may be
    // the thing that failed, so write the breadcrumb raw.
    // NOLINTNEXTLINE(madnet-stderr): crash path, bypasses the Logger on purpose.
    std::fprintf(stderr, "flight recorder postmortem written to %s\n",
                 path.c_str());
    std::fflush(stderr);
  }
}

}  // namespace

void RegisterCrashDump(FlightRecorder* recorder, uint64_t seed) {
  if (recorder == nullptr) return;
  CrashDumpRegistry& registry = Registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  registry.recorders.emplace_back(recorder, seed);
  if (!registry.hook_installed) {
    madnet::internal::SetCrashHook(&CrashHookDump);
    registry.hook_installed = true;
  }
}

void UnregisterCrashDump(FlightRecorder* recorder) {
  CrashDumpRegistry& registry = Registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  auto& recorders = registry.recorders;
  for (auto it = recorders.begin(); it != recorders.end(); ++it) {
    if (it->first == recorder) {
      recorders.erase(it);
      return;
    }
  }
}

size_t RegisteredCrashDumpCount() {
  CrashDumpRegistry& registry = Registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.recorders.size();
}

std::string DumpPostmortem(const char* why) {
  CrashDumpRegistry& registry = Registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.recorders.empty()) return "";
  const char* env = std::getenv("MADNET_POSTMORTEM");
  const std::string path =
      env != nullptr && env[0] != '\0' ? env : "madnet_postmortem.jsonl";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return "";
  std::fprintf(file, "{\"cat\":\"postmortem\",\"reason\":\"%s\"}\n",
               why != nullptr ? why : "");
  for (const auto& [recorder, seed] : registry.recorders) {
    std::fprintf(file, "{\"cat\":\"ring\",\"seed\":%llu,\"records\":%llu}\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(recorder->size()));
    const std::string jsonl = recorder->ToJsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), file);
  }
  std::fflush(file);
  std::fclose(file);
  return path;
}

}  // namespace madnet::obs
