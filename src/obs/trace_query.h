// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Dissemination-tree reconstruction over deliver/tx/rx trace records (the
// ad-provenance side of the trace schema; see docs/OBSERVABILITY.md).
// Shared by tools/madnet_tracequery, tools/madnet_tracestat --validate,
// bench/throughput's quality section, and the tests, so the invariants
// are checked by exactly one implementation:
//
//   * every deliver carries a non-zero ad key and a non-zero hop;
//   * a node delivers each ad at most once per run;
//   * parent-before-child: the parent either already has a deliver record
//     for the ad (earlier in the run) or is the ad's issuer (derivable
//     from the key: issuer == ad_key >> 32, in which case hop == 1);
//   * hop monotonicity: hop == parent's deliver hop + 1.
//
// Records stream in trace order; "run" headers scope state, so a merged
// multi-replication file reconstructs one forest per run.

#ifndef MADNET_OBS_TRACE_QUERY_H_
#define MADNET_OBS_TRACE_QUERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace_reader.h"
#include "util/json.h"
#include "util/status.h"

namespace madnet::obs {

/// One node's first receipt of one ad (a dissemination-tree edge
/// parent -> node).
struct DeliveryRecord {
  double t = 0.0;        ///< Virtual time of first receipt.
  uint32_t node = 0;     ///< Receiving node.
  uint32_t parent = 0;   ///< Node whose broadcast delivered it.
  uint32_t hop = 0;      ///< Distance from the issuer (issuer = 0).
  uint64_t tx_seq = 0;   ///< Transmit sequence of the delivering frame.
};

/// One advertisement's dissemination tree within one run.
struct AdTree {
  uint64_t ad_key = 0;
  uint32_t issuer = 0;       ///< ad_key >> 32 (AdId::Key layout).
  bool has_origin_tx = false;  ///< origin_t came from a matching tx record.
  /// Transmit time of the issuer's seed broadcast when the trace includes
  /// tx records (resolved via the first hop-1 deliver's tx_seq);
  /// otherwise the first deliver time, making latencies relative.
  double origin_t = 0.0;
  uint64_t rx_frames = 0;    ///< rx records carrying this ad (dups incl.).
  uint32_t max_hop = 0;
  std::vector<DeliveryRecord> deliveries;  ///< In trace (= time) order.

  /// Index into `deliveries` by receiving node.
  std::unordered_map<uint32_t, size_t> delivery_index;

  /// The node's delivery, or nullptr if it never got the ad.
  const DeliveryRecord* FindDelivery(uint32_t node) const;
};

/// All ads of one replication, keyed (and iterated) by ad key.
struct RunForest {
  uint64_t seed = 0;
  std::map<uint64_t, AdTree> ads;
};

/// Aggregate over every run in the file.
struct ForestStats {
  uint64_t runs = 0;
  uint64_t ads = 0;
  uint64_t deliveries = 0;
  uint64_t rx_frames = 0;       ///< Ad-carrying rx records.
  double latency_p50 = 0.0;     ///< Exact (sorted) delivery latencies.
  double latency_p99 = 0.0;
  double latency_mean = 0.0;
  /// Duplicate pressure: ad-carrying frames received per unique delivery
  /// (1.0 = no redundancy; 0 when the trace has no rx records).
  double redundancy_ratio = 0.0;
  std::map<uint32_t, uint64_t> hop_histogram;  ///< hop -> deliveries.
};

/// Streaming builder: feed every record of a trace in file order.
class DisseminationForest {
 public:
  /// Folds one parsed record in. "run" opens a new run scope; "tx"
  /// records index transmit times for latency origins; "rx" records count
  /// redundancy; "deliver" records grow a tree and are validated against
  /// the invariants in the file comment. Other categories are ignored.
  /// On error the record is not applied.
  [[nodiscard]] Status Add(const TraceEvent& event);

  /// Reads a whole JSONL trace file through Add. Errors carry line
  /// numbers.
  [[nodiscard]] Status AddFile(const std::string& path);

  const std::vector<RunForest>& runs() const { return runs_; }

  /// Aggregate statistics over all runs.
  ForestStats Summarize() const;

  /// Per-ad report: {"runs":[{"seed":...,"ads":[...]}],"summary":{...}}.
  /// Each ad object carries deliveries, max_hop, rx_frames, latency
  /// p50/p99, and the coverage-over-time milestones t25/t50/t75/t90
  /// (latency by which 25/50/75/90% of eventual receivers were covered).
  std::string ReportJson() const;

 private:
  std::vector<RunForest> runs_;
  /// Transmit time by tx_seq, current run only (cleared at run headers).
  std::unordered_map<uint64_t, double> tx_time_by_seq_;
};

}  // namespace madnet::obs

#endif  // MADNET_OBS_TRACE_QUERY_H_
