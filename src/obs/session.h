// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Process-wide observability session for bench binaries: configured once
// at startup (from --trace / --trace-categories / --metrics-out), it hands
// per-run TraceOptions to the replication engine and collects every run's
// RunContext as it finishes. Flush() sorts the collected runs by their
// deterministic sort key (the run's serialized config text, which embeds
// the seed), concatenates traces, merges metrics, and writes the output
// files — so a multi-threaded sweep produces byte-identical artifacts at
// any --jobs.
//
// Thread-safety: Configure/Get are for startup/shutdown (main thread);
// AddRun may be called concurrently from sweep workers.

#ifndef MADNET_OBS_SESSION_H_
#define MADNET_OBS_SESSION_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.h"
#include "obs/run_context.h"
#include "obs/trace.h"
#include "util/status.h"

namespace madnet::obs {

/// What the session records and where the artifacts go.
struct SessionOptions {
  TraceOptions trace;        ///< Categories + sampling for every run.
  std::string trace_path;    ///< JSONL output; empty = no trace file.
  std::string metrics_path;  ///< Metrics/manifest JSON; empty = none.
};

/// The process-wide collector. See file comment.
class Session {
 public:
  /// Installs the session. Call at most once per process (asserted);
  /// benches do this from ObsGuard before any scenario runs.
  static void Configure(const SessionOptions& options);

  /// The installed session, or nullptr when observability is off — the
  /// replication engine uses this to decide whether to build contexts.
  static Session* Get();

  /// Uninstalls and destroys the session (test hook; also makes a second
  /// Configure legal, e.g. across gtest cases).
  static void Shutdown();

  const SessionOptions& options() const { return options_; }

  /// Takes ownership of a finished run's context. `sort_key` must be a
  /// deterministic function of the run's full configuration (seed
  /// included); runs are emitted in ascending key order.
  void AddRun(std::string sort_key, std::unique_ptr<RunContext> run);

  /// Sorts, merges, and writes the artifacts:
  ///   - trace_path: every run's JSONL chunk, key order;
  ///   - metrics_path: {"manifest":…,"phases":…,"counters":…,…};
  ///   - trace_path + ".manifest.json" when only a trace was requested.
  /// Returns the first I/O error, if any.
  [[nodiscard]] Status Flush(const Manifest& manifest);

  /// Number of runs collected so far.
  size_t run_count() const;

  /// Public only so Configure can construct via make_unique; callers use
  /// the static lifecycle (Configure/Get/Shutdown) instead.
  explicit Session(const SessionOptions& options) : options_(options) {}

 private:
  SessionOptions options_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<RunContext>>> runs_;
};

}  // namespace madnet::obs

#endif  // MADNET_OBS_SESSION_H_
