// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Crash flight recorder: a bounded in-memory ring of the most recent trace
// records of one run, kept as raw POD notes (no formatting, no allocation
// per note — appending is a couple of stores into a preallocated ring) and
// formatted to JSONL only when dumped. Attached to a run's Trace it sees
// *every* category, unsampled, independent of the JSONL category mask — so
// a crashing soak run leaves behind the last few thousand things that
// happened, even when nobody asked for a trace file.
//
// Postmortems: recorders register themselves in a process-wide registry
// (RegisterCrashDump / UnregisterCrashDump — RunContext does this
// automatically). The first registration installs a crash hook into
// util/logging's DcheckFail, so a failed MADNET_DCHECK dumps every live
// recorder's ring to the postmortem file before aborting. The dump is
// best-effort by design — the process is already doomed — but under the
// usual single-threaded-replication discipline the rings are quiescent or
// owned by the crashing thread.
//
// The dump path is $MADNET_POSTMORTEM, or "madnet_postmortem.jsonl" in the
// working directory when unset. DumpPostmortem() can also be called
// directly, e.g. by a harness that catches a fatal Status.

#ifndef MADNET_OBS_FLIGHT_RECORDER_H_
#define MADNET_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace madnet::obs {

/// One POD note in the ring. Field meaning depends on `category` (a single
/// kTrace* bit, or 0 for the run header):
///   run:      a=seed
///   event:    a=seq
///   tx:       a=node, b=bytes, c=tx_seq, v=x, w=y
///   rx:       a=from, b=to, c=ad_key, d=tx_seq, v=bytes
///   deliver:  a=node, b=ad_key, c=tx_seq, d=parent, v=hop
///   suppress: a=node, b=ad_key, v=value, reason
///   sketch:   a=node, b=ad_key
///   fault:    a=node, v=value, reason
struct FlightRecord {
  uint32_t category = 0;
  double t = 0.0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
  double v = 0.0;
  double w = 0.0;
  const char* reason = nullptr;  ///< Static-storage string or null.
};

/// The bounded ring. Single-writer (the replication thread that owns the
/// Trace it is attached to).
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  /// Appends one note, overwriting the oldest once the ring is full.
  void Note(const FlightRecord& record);

  /// Notes retained right now (== min(total, capacity)).
  size_t size() const;
  size_t capacity() const { return ring_.size(); }
  /// Notes ever appended, including overwritten ones.
  uint64_t total() const { return total_; }

  /// Retained notes, oldest first.
  std::vector<FlightRecord> Snapshot() const;

  /// Formats the retained notes, oldest first, in the exact JSONL record
  /// shapes obs::Trace emits (so obs::ParseTraceLine reads a dump).
  std::string ToJsonl() const;

 private:
  std::vector<FlightRecord> ring_;
  size_t next_ = 0;        ///< Ring slot the next note lands in.
  uint64_t total_ = 0;
};

/// Formats one note in obs::Trace's JSONL record shape (newline included).
std::string FormatFlightRecord(const FlightRecord& record);

/// Registers `recorder` (borrowed; not owned) for inclusion in crash
/// postmortems, labelled with the run's seed. The first live registration
/// installs the DcheckFail crash hook. Thread-safe.
void RegisterCrashDump(FlightRecorder* recorder, uint64_t seed);

/// Removes `recorder` from the postmortem registry. Call before the
/// recorder dies. Unknown pointers are ignored. Thread-safe.
void UnregisterCrashDump(FlightRecorder* recorder);

/// Number of recorders currently registered (test hook).
size_t RegisteredCrashDumpCount();

/// Writes every registered recorder's ring to the postmortem file (see
/// file comment for the path), prefixed with one
/// {"cat":"postmortem","reason":…} header line per dump and one
/// {"cat":"ring","seed":…} line per recorder. Returns the path written,
/// or an empty string when nothing was registered or the file could not
/// be opened. Safe to call from the crash hook.
std::string DumpPostmortem(const char* why);

}  // namespace madnet::obs

#endif  // MADNET_OBS_FLIGHT_RECORDER_H_
