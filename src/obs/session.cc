// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/session.h"

#include <algorithm>
#include <fstream>

#include "util/json.h"
#include "util/logging.h"

namespace madnet::obs {
namespace {

std::unique_ptr<Session>& GlobalSession() {
  static std::unique_ptr<Session> session;
  return session;
}

[[nodiscard]] Status WriteFile(const std::string& path,
                               const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

void WritePhasesField(const std::map<std::string, PhaseStat>& phases,
                      JsonWriter* json) {
  json->Key("phases");
  json->BeginObject();
  for (const auto& [name, stat] : phases) {
    json->Key(name);
    json->BeginObject();
    json->Key("seconds");
    json->Value(stat.seconds);
    json->Key("count");
    json->Value(stat.count);
    json->EndObject();
  }
  json->EndObject();
}

}  // namespace

void Session::Configure(const SessionOptions& options) {
  MADNET_DCHECK(GlobalSession() == nullptr);
  GlobalSession() = std::make_unique<Session>(options);
}

Session* Session::Get() { return GlobalSession().get(); }

void Session::Shutdown() { GlobalSession().reset(); }

void Session::AddRun(std::string sort_key, std::unique_ptr<RunContext> run) {
  const std::lock_guard<std::mutex> lock(mutex_);
  runs_.emplace_back(std::move(sort_key), std::move(run));
}

size_t Session::run_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return runs_.size();
}

Status Session::Flush(const Manifest& manifest) {
  std::vector<std::pair<std::string, std::unique_ptr<RunContext>>> runs;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    runs.swap(runs_);
  }
  // Keys embed the full per-replication config (seed included), so equal
  // keys mean identical runs and a stable sort makes the emission order —
  // and therefore every artifact below — independent of --jobs.
  std::stable_sort(runs.begin(), runs.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  if (!options_.trace_path.empty()) {
    std::string text;
    for (const auto& [key, run] : runs) {
      text += run->trace.text();
    }
    if (Status status = WriteFile(options_.trace_path, text); !status.ok()) {
      return status;
    }
  }

  // Merge metrics and phases across all runs, seed order.
  MetricsRegistry merged_metrics;
  RunContext merged_phases{TraceOptions{}};
  uint64_t sampled_out = 0;
  uint64_t kept = 0;
  for (const auto& [key, run] : runs) {
    merged_metrics.MergeFrom(run->metrics);
    merged_phases.MergePhasesFrom(*run);
    sampled_out += run->trace.records_sampled_out();
    kept += run->trace.records_kept();
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("manifest");
  manifest.WriteJson(&json);
  json.Key("runs");
  json.Value(static_cast<uint64_t>(runs.size()));
  json.Key("trace_records_kept");
  json.Value(kept);
  json.Key("trace_records_sampled_out");
  json.Value(sampled_out);
  WritePhasesField(merged_phases.phases(), &json);
  merged_metrics.WriteJsonFields(&json);
  json.EndObject();
  std::string report = json.TakeString();
  report += '\n';

  if (!options_.metrics_path.empty()) {
    return WriteFile(options_.metrics_path, report);
  }
  if (!options_.trace_path.empty()) {
    // Trace-only invocation: still record provenance next to the trace.
    return WriteFile(options_.trace_path + ".manifest.json", report);
  }
  return Status::Ok();
}

}  // namespace madnet::obs
