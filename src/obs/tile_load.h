// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Spatial load telemetry: a per-run map of how broadcast traffic and
// deliveries distribute over the plane, bucketed into fixed square tiles.
// The medium feeds it (null-gated, one branch when absent) at every
// transmit and delivery; Summarize() books the aggregate into a
// MetricsRegistry at the end of a run so tile load merges deterministically
// across replications like every other metric.
//
// Storage is a dense row-major grid sized to the scenario area at
// construction: recording is two multiply/clamps and an array index (the
// record paths run once per broadcast and once per delivery, inside the
// medium's hot loop), and iteration order is fixed, so the JSON output and
// booked metrics are deterministic.

#ifndef MADNET_OBS_TILE_LOAD_H_
#define MADNET_OBS_TILE_LOAD_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace madnet::obs {

/// Per-tile accumulation of medium activity.
struct TileStats {
  uint64_t broadcasts = 0;       ///< Frames transmitted from this tile.
  uint64_t deliveries = 0;       ///< Frames delivered to receivers here.
  uint64_t queue_depth_sum = 0;  ///< Sum over broadcasts of in-flight
                                 ///< frames at transmit time (divide by
                                 ///< broadcasts for the mean depth seen
                                 ///< from this tile).
};

/// Fixed-grid spatial load map. Single-threaded, like the medium that
/// feeds it; one instance per replication.
class TileLoadMap {
 public:
  /// `tile_m` is the square tile edge in metres (typically the radio
  /// range, so a tile is roughly one contention domain); `area_m` the
  /// scenario's square side. Positions outside [0, area_m) clamp to the
  /// border tiles (mobility reflects at the borders, so only transient
  /// float spill lands there).
  TileLoadMap(double tile_m, double area_m);

  /// Records one broadcast from position (x, y) with `queue_depth`
  /// frames in flight (including this one).
  void RecordBroadcast(double x, double y, uint32_t queue_depth) {
    TileStats& tile = grid_[IndexOf(x, y)];
    tile.broadcasts += 1;
    tile.queue_depth_sum += queue_depth;
  }

  /// Records one successful delivery to a receiver at (x, y).
  void RecordDelivery(double x, double y) {
    grid_[IndexOf(x, y)].deliveries += 1;
  }

  /// Books the aggregate into `metrics`:
  ///   medium.tile.count           (gauge)  tiles touched
  ///   medium.tile.broadcasts_max  (gauge)  hottest tile's tx count
  ///   medium.tile.deliveries_max  (gauge)  hottest tile's rx count
  ///   medium.tile.broadcasts      (histogram) per-tile tx distribution
  ///   medium.tile.queue_depth     (histogram) queue depth per broadcast
  /// Histograms use fixed bounds so per-seed registries merge.
  void Summarize(MetricsRegistry* metrics) const;

  /// One JSON object per touched tile, row-major (ty, then tx):
  ///   {"tx":..,"ty":..,"broadcasts":..,"deliveries":..,"qdepth_sum":..}
  /// Each on its own line (JSONL), for the tile-load report.
  std::string ToJsonl() const;

  double tile_m() const { return tile_m_; }
  int tiles_per_side() const { return side_; }
  /// Row-major grid, tiles_per_side() squared entries (tile (tx, ty) at
  /// index ty * tiles_per_side() + tx).
  const std::vector<TileStats>& grid() const { return grid_; }

 private:
  size_t IndexOf(double x, double y) const {
    // Truncation (not floor) is fine: anything negative clamps to 0.
    const int tx = std::clamp(static_cast<int>(x * inv_tile_), 0, side_ - 1);
    const int ty = std::clamp(static_cast<int>(y * inv_tile_), 0, side_ - 1);
    return static_cast<size_t>(ty) * static_cast<size_t>(side_) +
           static_cast<size_t>(tx);
  }

  double tile_m_;
  double inv_tile_;
  int side_;
  std::vector<TileStats> grid_;
};

}  // namespace madnet::obs

#endif  // MADNET_OBS_TILE_LOAD_H_
