// Copyright (c) 2026 madnet authors. All rights reserved.
//
// The run manifest: everything needed to attribute a bench/experiment
// output to the code and configuration that produced it — git describe,
// build type, config hash, seeds, job count, host core count, wall-clock.
// Written next to every bench output (inside --metrics-out files, as the
// "manifest" block of BENCH_throughput.json, and as <trace>.manifest.json
// when only a trace was requested).

#ifndef MADNET_OBS_MANIFEST_H_
#define MADNET_OBS_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"

namespace madnet::obs {

/// FNV-1a 64-bit hash; the repo's content hash for config texts.
uint64_t Fnv1a64(std::string_view bytes);

/// Fnv1a64 rendered as 16 lowercase hex digits.
std::string HashHex(std::string_view bytes);

/// Provenance + environment of one bench/experiment invocation.
struct Manifest {
  std::string git_describe = GitDescribe();  ///< Compiled-in at configure.
  std::string build_type = BuildType();      ///< CMAKE_BUILD_TYPE.
  std::string config_hash;   ///< HashHex of the scenario config text;
                             ///< empty when many configs were swept.
  uint64_t base_seed = 0;    ///< First seed of the replication series.
  int replications = 0;      ///< Seeds per data point (0 = unknown/mixed).
  int jobs = 1;              ///< Resolved worker count of the invocation.
  unsigned host_cores = HostCores();  ///< Hardware threads on this host.
  double wall_s = 0.0;       ///< Whole-invocation wall-clock seconds.

  /// `git describe --always --dirty` at configure time ("unknown" outside
  /// a git checkout).
  static std::string GitDescribe();

  /// CMAKE_BUILD_TYPE at configure time.
  static std::string BuildType();

  /// std::thread::hardware_concurrency (>= 1).
  static unsigned HostCores();

  /// Writes this manifest as an object value (caller supplies the key):
  /// json->Key("manifest"); manifest.WriteJson(&json);
  void WriteJson(JsonWriter* json) const;
};

}  // namespace madnet::obs

#endif  // MADNET_OBS_MANIFEST_H_
