// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Reader for the flat JSONL trace records emitted by obs::Trace. The
// repo's JsonWriter is write-only by design, so consumers (madnet_tracestat,
// madnet_heatmap, tests) share this parser instead of growing private
// ad-hoc ones. It understands exactly the flat one-object-per-line shape
// Trace produces: string and number values, no nesting, no escapes.

#ifndef MADNET_OBS_TRACE_READER_H_
#define MADNET_OBS_TRACE_READER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace madnet::obs {

/// One parsed trace record. Only the fields present on the line are set;
/// everything else keeps its default. `cat` is always set on success.
struct TraceEvent {
  std::string cat;      ///< "run", "event", "tx", "rx", "deliver",
                        ///< "suppress", "sketch", "fault".
  double t = 0.0;       ///< Virtual sim time (absent on "run" records).
  uint64_t seq = 0;     ///< Event sequence number ("event") or transmit
                        ///< sequence ("tx"/"rx"/"deliver").
  uint32_t node = 0;    ///< Acting / receiving node index.
  uint32_t from = 0;    ///< Sender index ("rx").
  double x = 0.0;       ///< Transmitter position ("tx").
  double y = 0.0;
  uint32_t bytes = 0;   ///< Packet size ("tx"/"rx").
  uint64_t ad = 0;      ///< Ad key ("rx"/"deliver"/"suppress"/"sketch").
  uint32_t hop = 0;     ///< Hop count at first receipt ("deliver").
  uint32_t parent = 0;  ///< Node whose broadcast delivered ("deliver").
  double v = 0.0;       ///< Reason-specific value ("suppress").
  uint64_t seed = 0;    ///< Replication seed ("run").
  std::string config;   ///< Config hash hex ("run").
  std::string reason;   ///< Suppression reason ("suppress").
};

/// Parses one JSONL line into `*event` (reset first). Returns
/// InvalidArgument on malformed input or an unknown "cat" value.
[[nodiscard]] Status ParseTraceLine(std::string_view line, TraceEvent* event);

}  // namespace madnet::obs

#endif  // MADNET_OBS_TRACE_READER_H_
