// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/trace_reader.h"

#include <cstdlib>

namespace madnet::obs {
namespace {

// Cursor over one line; every helper consumes on success only.
struct Cursor {
  std::string_view rest;

  bool Consume(char c) {
    if (rest.empty() || rest.front() != c) return false;
    rest.remove_prefix(1);
    return true;
  }

  bool ConsumeString(std::string* out) {
    if (!Consume('"')) return false;
    const size_t end = rest.find('"');
    if (end == std::string_view::npos) return false;
    // Trace never emits escapes, so a backslash means foreign input.
    const std::string_view body = rest.substr(0, end);
    if (body.find('\\') != std::string_view::npos) return false;
    out->assign(body);
    rest.remove_prefix(end + 1);
    return true;
  }

  bool ConsumeNumber(double* out) {
    const char* begin = rest.data();
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) return false;
    if (static_cast<size_t>(end - begin) > rest.size()) return false;
    *out = value;
    rest.remove_prefix(static_cast<size_t>(end - begin));
    return true;
  }

  // Unsigned integers are parsed separately: strtod would lose precision
  // above 2^53 (ad keys and seeds are full 64-bit values).
  bool ConsumeUint(uint64_t* out) {
    if (rest.empty() || rest.front() < '0' || rest.front() > '9') {
      return false;
    }
    const char* begin = rest.data();
    char* end = nullptr;
    *out = std::strtoull(begin, &end, 10);
    if (end == begin) return false;
    rest.remove_prefix(static_cast<size_t>(end - begin));
    return true;
  }

  bool PeekDigitOrSign() const {
    if (rest.empty()) return false;
    const char c = rest.front();
    return c == '-' || (c >= '0' && c <= '9');
  }
};

[[nodiscard]] Status Malformed(std::string_view line) {
  return Status::InvalidArgument("malformed trace line: " +
                                 std::string(line.substr(0, 120)));
}

}  // namespace

[[nodiscard]] Status ParseTraceLine(std::string_view line, TraceEvent* event) {
  *event = TraceEvent{};
  // Strip a trailing CR/LF so callers can pass raw getline output.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  Cursor cursor{line};
  if (!cursor.Consume('{')) return Malformed(line);
  bool first = true;
  while (!cursor.Consume('}')) {
    if (!first && !cursor.Consume(',')) return Malformed(line);
    first = false;
    std::string key;
    if (!cursor.ConsumeString(&key)) return Malformed(line);
    if (!cursor.Consume(':')) return Malformed(line);
    bool ok = false;
    if (key == "cat") {
      ok = cursor.ConsumeString(&event->cat);
    } else if (key == "config") {
      ok = cursor.ConsumeString(&event->config);
    } else if (key == "reason") {
      ok = cursor.ConsumeString(&event->reason);
    } else if (key == "t") {
      ok = cursor.ConsumeNumber(&event->t);
    } else if (key == "x") {
      ok = cursor.ConsumeNumber(&event->x);
    } else if (key == "y") {
      ok = cursor.ConsumeNumber(&event->y);
    } else if (key == "v") {
      ok = cursor.ConsumeNumber(&event->v);
    } else if (key == "seq") {
      ok = cursor.ConsumeUint(&event->seq);
    } else if (key == "seed") {
      ok = cursor.ConsumeUint(&event->seed);
    } else if (key == "ad") {
      ok = cursor.ConsumeUint(&event->ad);
    } else if (key == "node") {
      uint64_t value = 0;
      ok = cursor.ConsumeUint(&value);
      event->node = static_cast<uint32_t>(value);
    } else if (key == "from") {
      uint64_t value = 0;
      ok = cursor.ConsumeUint(&value);
      event->from = static_cast<uint32_t>(value);
    } else if (key == "bytes") {
      uint64_t value = 0;
      ok = cursor.ConsumeUint(&value);
      event->bytes = static_cast<uint32_t>(value);
    } else if (key == "hop") {
      uint64_t value = 0;
      ok = cursor.ConsumeUint(&value);
      event->hop = static_cast<uint32_t>(value);
    } else if (key == "parent") {
      uint64_t value = 0;
      ok = cursor.ConsumeUint(&value);
      event->parent = static_cast<uint32_t>(value);
    } else {
      // Unknown key: skip its (string or number) value so the format can
      // grow fields without breaking old readers.
      std::string ignored_string;
      double ignored_number = 0.0;
      ok = cursor.PeekDigitOrSign() ? cursor.ConsumeNumber(&ignored_number)
                                    : cursor.ConsumeString(&ignored_string);
    }
    if (!ok) return Malformed(line);
  }
  if (!cursor.rest.empty()) return Malformed(line);
  if (event->cat != "run" && event->cat != "event" && event->cat != "tx" &&
      event->cat != "rx" && event->cat != "deliver" &&
      event->cat != "suppress" && event->cat != "sketch" &&
      event->cat != "fault") {
    return Status::InvalidArgument("unknown trace category: " + event->cat);
  }
  return Status::Ok();
}

}  // namespace madnet::obs
