// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Structured run tracing: a per-run sink of JSONL records describing what
// happened *inside* a simulation — event dispatch, broadcast tx/rx,
// gossip suppression decisions, sketch merges. Records are appended in
// simulation order, which is fully deterministic given the seed, so a
// trace is a reproducible artifact: same config + same seed => byte-
// identical bytes, at any --jobs (per-replication sinks are concatenated
// in seed order by scenario::ReplicatedObs / obs::Session).
//
// Cost model: a subsystem holds a `Trace*` that is null when its category
// is not requested, so a disabled trace costs exactly one branch on the
// hot path. When enabled, each record is one snprintf into a stack buffer
// plus a string append; `sample_period` keeps only every Nth record per
// category for high-frequency categories (event dispatch, rx).
//
// Record schema (field order is fixed; see docs/OBSERVABILITY.md):
//   {"cat":"run","seed":7,"config":"9a0f…"}          run header
//   {"cat":"event","t":12.5,"seq":3021}              event dispatch
//   {"cat":"tx","t":…,"node":5,"x":…,"y":…,"bytes":64}
//   {"cat":"rx","t":…,"from":5,"node":9,"bytes":64}
//   {"cat":"suppress","t":…,"node":5,"ad":…,"reason":"bernoulli","v":0.25}
//   {"cat":"sketch","t":…,"node":5,"ad":…}
//   {"cat":"fault","t":…,"node":5,"reason":"crash","v":0}

#ifndef MADNET_OBS_TRACE_H_
#define MADNET_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace madnet::obs {

/// Trace category bitmask values.
inline constexpr uint32_t kTraceEvent = 1u << 0;     ///< Event dispatch.
inline constexpr uint32_t kTraceTx = 1u << 1;        ///< Broadcast sent.
inline constexpr uint32_t kTraceRx = 1u << 2;        ///< Frame delivered.
inline constexpr uint32_t kTraceSuppress = 1u << 3;  ///< Gossip suppressed.
inline constexpr uint32_t kTraceSketch = 1u << 4;    ///< FM sketch merge.
inline constexpr uint32_t kTraceFault = 1u << 5;     ///< Injected fault.
inline constexpr uint32_t kTraceAll = kTraceEvent | kTraceTx | kTraceRx |
                                      kTraceSuppress | kTraceSketch |
                                      kTraceFault;

/// Number of distinct categories (for per-category sampling state).
inline constexpr int kTraceCategoryCount = 6;

/// The short name used in records and --trace-categories ("event", "tx",
/// ...). `category` must be exactly one bit of kTraceAll.
const char* TraceCategoryName(uint32_t category);

/// Parses a comma-separated category list ("tx,rx", "all", "none") into a
/// bitmask. InvalidArgument on unknown names.
[[nodiscard]] StatusOr<uint32_t> ParseTraceCategories(const std::string& csv);

/// What a Trace records and how aggressively it samples.
struct TraceOptions {
  uint32_t categories = 0;     ///< Bitmask of kTrace* values.
  uint32_t sample_period = 1;  ///< Keep every Nth record per category (>= 1).
};

/// One run's trace sink. Single-threaded, like everything else inside a
/// replication; concurrent replications each own a Trace.
class Trace {
 public:
  explicit Trace(const TraceOptions& options);

  /// True iff `category` (one or more bits) is requested. Inline so call
  /// sites gated on a non-null Trace* pay one mask test.
  bool Enabled(uint32_t category) const {
    return (options_.categories & category) != 0;
  }

  /// Emits the run-header record. Call once, before any other record.
  void BeginRun(uint64_t seed, const std::string& config_hash_hex);

  /// Typed record appenders. Each checks Enabled() and sampling itself,
  /// so callers may gate on the pointer alone.
  void Event(double t, uint64_t seq);
  void Tx(double t, uint32_t node, double x, double y, uint32_t bytes);
  void Rx(double t, uint32_t from, uint32_t to, uint32_t bytes);
  void Suppress(double t, uint32_t node, uint64_t ad_key, const char* reason,
                double value);
  void SketchMerge(double t, uint32_t node, uint64_t ad_key);
  /// Injected fault: `kind` is "down"/"crash"/"up" (node-scoped) or
  /// "loss_on"/"loss_off"/"jam_on"/"jam_off" (network-wide; node is
  /// 0xFFFFFFFF). `value` carries the episode loss / jammed area.
  void Fault(double t, uint32_t node, const char* kind, double value);

  /// The JSONL text so far (one record per line, each '\n'-terminated).
  const std::string& text() const { return text_; }

  /// Records appended / records skipped by sampling.
  uint64_t records_kept() const { return records_kept_; }
  uint64_t records_sampled_out() const { return records_sampled_out_; }

  const TraceOptions& options() const { return options_; }

 private:
  /// Sampling gate for one record of `category` (a single bit). Returns
  /// true if the record should be kept.
  bool Sample(uint32_t category);

  TraceOptions options_;
  std::string text_;
  uint64_t records_kept_ = 0;
  uint64_t records_sampled_out_ = 0;
  uint64_t sample_counters_[kTraceCategoryCount] = {};
};

}  // namespace madnet::obs

#endif  // MADNET_OBS_TRACE_H_
