// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Structured run tracing: a per-run sink of JSONL records describing what
// happened *inside* a simulation — event dispatch, broadcast tx/rx,
// first-receipt deliveries (ad provenance), gossip suppression decisions,
// sketch merges. Records are appended in simulation order, which is fully
// deterministic given the seed, so a trace is a reproducible artifact:
// same config + same seed => byte-identical bytes, at any --jobs
// (per-replication sinks are concatenated in seed order by
// scenario::ReplicatedObs / obs::Session).
//
// Cost model: a subsystem holds a `Trace*` that is null when its category
// is not requested, so a disabled trace costs exactly one branch on the
// hot path. When enabled, each record is one snprintf into a stack buffer
// plus a string append; `sample_period` keeps only every Nth record per
// category for high-frequency categories (event dispatch, rx).
//
// An attached FlightRecorder (see obs/flight_recorder.h) additionally
// receives every record as a POD note — all categories, unsampled —
// regardless of the text category mask, so a postmortem ring can stay
// cheap while the JSONL text stays bounded.
//
// Record schema (field order is fixed; see docs/OBSERVABILITY.md):
//   {"cat":"run","seed":7,"config":"9a0f…"}          run header
//   {"cat":"event","t":12.5,"seq":3021}              event dispatch
//   {"cat":"tx","t":…,"node":5,"x":…,"y":…,"bytes":64,"seq":17}
//   {"cat":"rx","t":…,"from":5,"node":9,"bytes":64,"ad":…,"seq":17}
//   {"cat":"deliver","t":…,"node":9,"ad":…,"hop":2,"seq":17,"parent":5}
//   {"cat":"suppress","t":…,"node":5,"ad":…,"reason":"bernoulli","v":0.25}
//   {"cat":"sketch","t":…,"node":5,"ad":…}
//   {"cat":"fault","t":…,"node":5,"reason":"crash","v":0}

#ifndef MADNET_OBS_TRACE_H_
#define MADNET_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace madnet::obs {

class FlightRecorder;

/// Trace category bitmask values.
inline constexpr uint32_t kTraceEvent = 1u << 0;     ///< Event dispatch.
inline constexpr uint32_t kTraceTx = 1u << 1;        ///< Broadcast sent.
inline constexpr uint32_t kTraceRx = 1u << 2;        ///< Frame delivered.
inline constexpr uint32_t kTraceSuppress = 1u << 3;  ///< Gossip suppressed.
inline constexpr uint32_t kTraceSketch = 1u << 4;    ///< FM sketch merge.
inline constexpr uint32_t kTraceFault = 1u << 5;     ///< Injected fault.
inline constexpr uint32_t kTraceDeliver = 1u << 6;   ///< First ad receipt.
inline constexpr uint32_t kTraceAll = kTraceEvent | kTraceTx | kTraceRx |
                                      kTraceSuppress | kTraceSketch |
                                      kTraceFault | kTraceDeliver;

/// Number of distinct categories (for per-category sampling state).
inline constexpr int kTraceCategoryCount = 7;

/// The short name used in records and --trace-categories ("event", "tx",
/// ...). `category` must be exactly one bit of kTraceAll.
const char* TraceCategoryName(uint32_t category);

/// Parses a comma-separated category list ("tx,rx", "all", "none") into a
/// bitmask. InvalidArgument on unknown names.
[[nodiscard]] StatusOr<uint32_t> ParseTraceCategories(const std::string& csv);

/// What a Trace records and how aggressively it samples.
struct TraceOptions {
  uint32_t categories = 0;     ///< Bitmask of kTrace* values.
  uint32_t sample_period = 1;  ///< Keep every Nth record per category (>= 1).
  /// Attach a bounded in-memory FlightRecorder ring (owned by the
  /// RunContext) capturing the most recent records of *all* categories for
  /// crash postmortems. See obs/flight_recorder.h.
  bool flight_recorder = false;
};

/// One run's trace sink. Single-threaded, like everything else inside a
/// replication; concurrent replications each own a Trace.
class Trace {
 public:
  explicit Trace(const TraceOptions& options);

  /// True iff `category` (one or more bits) should be reported at all —
  /// requested in the text mask, or captured by an attached flight
  /// recorder (which listens to every category). Inline so call sites
  /// gated on a non-null Trace* pay one mask test.
  bool Enabled(uint32_t category) const {
    return ((options_.categories | recorder_categories_) & category) != 0;
  }

  /// Emits the run-header record. Call once, before any other record.
  void BeginRun(uint64_t seed, const std::string& config_hash_hex);

  /// Typed record appenders. Each checks Enabled() and sampling itself,
  /// so callers may gate on the pointer alone.
  void Event(double t, uint64_t seq);
  /// `tx_seq` is the medium's per-run monotonic transmission sequence
  /// number of this frame (1-based; links rx/deliver records to their tx).
  void Tx(double t, uint32_t node, double x, double y, uint32_t bytes,
          uint64_t tx_seq);
  /// `ad_key` is the carried advertisement's key (0 for frames that carry
  /// none or several); `tx_seq` links back to the tx record.
  void Rx(double t, uint32_t from, uint32_t to, uint32_t bytes,
          uint64_t ad_key, uint64_t tx_seq);
  /// Ad provenance: node's *first* receipt of ad `ad_key`, at gossip depth
  /// `hop` (1 = heard the issuer directly), carried by the frame with
  /// transmission sequence `tx_seq`, transmitted by `parent`.
  void Deliver(double t, uint32_t node, uint64_t ad_key, uint32_t hop,
               uint64_t tx_seq, uint32_t parent);
  void Suppress(double t, uint32_t node, uint64_t ad_key, const char* reason,
                double value);
  void SketchMerge(double t, uint32_t node, uint64_t ad_key);
  /// Injected fault: `kind` is "down"/"crash"/"up" (node-scoped) or
  /// "loss_on"/"loss_off"/"jam_on"/"jam_off" (network-wide; node is
  /// 0xFFFFFFFF). `value` carries the episode loss / jammed area.
  void Fault(double t, uint32_t node, const char* kind, double value);

  /// Attaches (or detaches, with nullptr) a postmortem ring that receives
  /// every record of every category as a POD note, before text filtering.
  /// `reason` strings handed to noted records must outlive the recorder
  /// (the emitters all pass string literals). Not owned.
  void SetFlightRecorder(FlightRecorder* recorder);

  /// The JSONL text so far (one record per line, each '\n'-terminated).
  const std::string& text() const { return text_; }

  /// Records appended / records skipped by sampling.
  uint64_t records_kept() const { return records_kept_; }
  uint64_t records_sampled_out() const { return records_sampled_out_; }

  const TraceOptions& options() const { return options_; }

 private:
  /// True iff `category` is requested in the JSONL text output.
  bool TextEnabled(uint32_t category) const {
    return (options_.categories & category) != 0;
  }

  /// Sampling gate for one record of `category` (a single bit). Returns
  /// true if the record should be kept.
  bool Sample(uint32_t category);

  TraceOptions options_;
  std::string text_;
  uint64_t records_kept_ = 0;
  uint64_t records_sampled_out_ = 0;
  uint64_t sample_counters_[kTraceCategoryCount] = {};
  FlightRecorder* recorder_ = nullptr;
  /// kTraceAll while a recorder is attached, 0 otherwise (folded into
  /// Enabled() so emitters fire for recorder-only categories too).
  uint32_t recorder_categories_ = 0;
};

}  // namespace madnet::obs

#endif  // MADNET_OBS_TRACE_H_
