// Copyright (c) 2026 madnet authors. All rights reserved.
//
// The metrics registry: named counters, gauges, and fixed-bucket
// histograms describing one run. Plain and allocation-light — a registry
// belongs to a single replication (single-threaded, like the simulator);
// under exec::RunReplicated each replication fills its own registry
// and the per-seed registries are merged *in seed order*, so the merged
// aggregate is bit-identical at any --jobs.
//
// Merge semantics: counters and histogram buckets sum; gauges take the
// value of the last merged-in registry that set them (merge order = seed
// order, so this is deterministic too).
//
// Storage is std::map so snapshots and JSON output are name-ordered and
// deterministic. Handles returned by Counter()/Gauge()/Histogram() are
// stable for the registry's lifetime (node-based map), so hot paths can
// resolve the name once and bump a plain integer afterwards.

#ifndef MADNET_OBS_METRICS_H_
#define MADNET_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace madnet::obs {

/// Fixed-bucket histogram: `bounds` are inclusive upper edges of the first
/// N buckets; one overflow bucket catches everything above the last bound.
class FixedHistogram {
 public:
  FixedHistogram() = default;
  explicit FixedHistogram(std::vector<double> bounds);

  /// Records one observation.
  void Observe(double value);

  /// Bucket-wise sum; both histograms must share identical bounds.
  void MergeFrom(const FixedHistogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

 private:
  std::vector<double> bounds_;    // Ascending upper edges.
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 (last = overflow).
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One run's (or one merged aggregate's) named metrics.
class MetricsRegistry {
 public:
  /// Finds or creates a counter. The returned pointer stays valid for the
  /// registry's lifetime.
  uint64_t* Counter(const std::string& name);

  /// Finds or creates a gauge (last-set-wins semantics).
  double* Gauge(const std::string& name);

  /// Finds or creates a histogram. `bounds` is used only on creation; a
  /// later lookup with different bounds keeps the original buckets.
  FixedHistogram* Histogram(const std::string& name,
                            std::vector<double> bounds);

  /// Convenience one-shot mutators.
  void AddCounter(const std::string& name, uint64_t delta) {
    *Counter(name) += delta;
  }
  void SetGauge(const std::string& name, double value) {
    *Gauge(name) = value;
  }

  /// Deterministic merge (see file comment). Call in seed order.
  void MergeFrom(const MetricsRegistry& other);

  /// Writes {"counters":{...},"gauges":{...},"histograms":{...}} fields
  /// into the currently open JSON object, name-ordered.
  void WriteJsonFields(JsonWriter* json) const;

  /// Whole-registry JSON document (for --metrics-out style output).
  std::string ToJson() const;

  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, FixedHistogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, FixedHistogram> histograms_;
};

}  // namespace madnet::obs

#endif  // MADNET_OBS_METRICS_H_
