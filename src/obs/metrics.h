// Copyright (c) 2026 madnet authors. All rights reserved.
//
// The metrics registry: named counters, gauges, and fixed-bucket
// histograms describing one run. Plain and allocation-light — a registry
// belongs to a single replication (single-threaded, like the simulator);
// under exec::RunReplicated each replication fills its own registry
// and the per-seed registries are merged *in seed order*, so the merged
// aggregate is bit-identical at any --jobs.
//
// Merge semantics: counters and histogram buckets sum; gauges take the
// value of the last merged-in registry that set them (merge order = seed
// order, so this is deterministic too).
//
// Storage is std::map so snapshots and JSON output are name-ordered and
// deterministic. Handles returned by Counter()/Gauge()/Histogram() are
// stable for the registry's lifetime (node-based map), so hot paths can
// resolve the name once and bump a plain integer afterwards.

#ifndef MADNET_OBS_METRICS_H_
#define MADNET_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace madnet::obs {

/// Fixed-bucket histogram: `bounds` are inclusive upper edges of the first
/// N buckets; one overflow bucket catches everything above the last bound.
class FixedHistogram {
 public:
  FixedHistogram() = default;
  explicit FixedHistogram(std::vector<double> bounds);

  /// Records one observation.
  void Observe(double value);

  /// Bucket-wise sum. Merging into a default-constructed histogram adopts
  /// `other` wholesale; otherwise both must share identical bounds —
  /// mismatched bounds return InvalidArgument and leave this histogram
  /// unchanged (a silent misaligned sum would corrupt every quantile
  /// derived from it).
  [[nodiscard]] Status MergeFrom(const FixedHistogram& other);

  /// Folds `n_buckets` pre-bucketed counts (plus the sum of the raw
  /// observations behind them) into this histogram — for hot producers
  /// that accumulate into a plain array and book once at the end of a run
  /// (e.g. the simulator's dispatch-gap telemetry). `n_buckets` must equal
  /// counts().size(), i.e. bounds().size() + 1 including the overflow
  /// bucket; a mismatch returns InvalidArgument and changes nothing.
  [[nodiscard]] Status MergeBucketCounts(const uint64_t* counts,
                                         size_t n_buckets, double sum);

  /// Estimates the q-quantile (q in [0, 1]) from the bucket counts by
  /// linear interpolation inside the bucket holding the target rank, with
  /// the first bound as each bucket's implicit lower edge floor at 0 (or
  /// the previous bound). Observations in the overflow bucket clamp to the
  /// last bound — like Prometheus's histogram_quantile, the estimate never
  /// exceeds the largest finite edge. Returns 0 for an empty histogram.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

 private:
  std::vector<double> bounds_;    // Ascending upper edges.
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 (last = overflow).
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One run's (or one merged aggregate's) named metrics.
class MetricsRegistry {
 public:
  /// Finds or creates a counter. The returned pointer stays valid for the
  /// registry's lifetime.
  uint64_t* Counter(const std::string& name);

  /// Finds or creates a gauge (last-set-wins semantics).
  double* Gauge(const std::string& name);

  /// Finds or creates a histogram. `bounds` is used only on creation; a
  /// later lookup with different bounds keeps the original buckets.
  FixedHistogram* Histogram(const std::string& name,
                            std::vector<double> bounds);

  /// Convenience one-shot mutators.
  void AddCounter(const std::string& name, uint64_t delta) {
    *Counter(name) += delta;
  }
  void SetGauge(const std::string& name, double value) {
    *Gauge(name) = value;
  }

  /// Deterministic merge (see file comment). Call in seed order.
  void MergeFrom(const MetricsRegistry& other);

  /// Writes {"counters":{...},"gauges":{...},"histograms":{...}} fields
  /// into the currently open JSON object, name-ordered.
  void WriteJsonFields(JsonWriter* json) const;

  /// Whole-registry JSON document (for --metrics-out style output).
  std::string ToJson() const;

  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, FixedHistogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, FixedHistogram> histograms_;
};

}  // namespace madnet::obs

#endif  // MADNET_OBS_METRICS_H_
