// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Per-run observability context: one Trace sink, one MetricsRegistry, and
// the run's profiling phase accumulator, owned together so the scenario
// harness can thread a single pointer through simulator, medium, and
// protocols. A RunContext belongs to exactly one replication; the
// replication engine merges contexts in seed order.
//
// PhaseTimer is the RAII profiling hook: it measures real (steady-clock)
// time around setup / event-loop / aggregation and books it into the
// context. Wall-clock here never feeds simulation results — it only
// surfaces in the run manifest — so determinism is unaffected.

#ifndef MADNET_OBS_RUN_CONTEXT_H_
#define MADNET_OBS_RUN_CONTEXT_H_

#include <chrono>
#include <map>
#include <memory>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace madnet::obs {

/// Accumulated real time of one named phase.
struct PhaseStat {
  double seconds = 0.0;
  uint64_t count = 0;
};

/// One replication's observability state.
class RunContext {
 public:
  explicit RunContext(const TraceOptions& trace_options)
      : trace(trace_options) {
    if (trace_options.flight_recorder) {
      flight_recorder = std::make_unique<FlightRecorder>();
      trace.SetFlightRecorder(flight_recorder.get());
    }
  }

  ~RunContext() {
    if (flight_recorder != nullptr) {
      UnregisterCrashDump(flight_recorder.get());
    }
  }

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Arms the crash dump for this run's recorder (no-op when the flight
  /// recorder is disabled). Call once the run's seed is known; the
  /// recorder is unregistered automatically on destruction.
  void ArmCrashDump(uint64_t seed) {
    if (flight_recorder != nullptr) {
      RegisterCrashDump(flight_recorder.get(), seed);
    }
  }

  Trace trace;
  MetricsRegistry metrics;
  /// Bounded ring of recent trace records, dumped to a postmortem file on
  /// MADNET_DCHECK failure (see obs/flight_recorder.h). Created only when
  /// TraceOptions::flight_recorder is set; null otherwise.
  std::unique_ptr<FlightRecorder> flight_recorder;

  /// Books `seconds` of real time into phase `name`.
  void AddPhase(const std::string& name, double seconds) {
    PhaseStat& stat = phases_[name];
    stat.seconds += seconds;
    stat.count += 1;
  }

  /// Seconds booked for `name` so far (0 if never timed).
  double PhaseSeconds(const std::string& name) const {
    const auto it = phases_.find(name);
    return it == phases_.end() ? 0.0 : it->second.seconds;
  }

  /// Name-ordered phase table.
  const std::map<std::string, PhaseStat>& phases() const { return phases_; }

  /// Sums another context's phases into this one (for merged reports).
  void MergePhasesFrom(const RunContext& other) {
    for (const auto& [name, stat] : other.phases_) {
      PhaseStat& mine = phases_[name];
      mine.seconds += stat.seconds;
      mine.count += stat.count;
    }
  }

 private:
  std::map<std::string, PhaseStat> phases_;
};

/// RAII phase timer. Null context => no-op (so call sites need no branch).
class PhaseTimer {
 public:
  PhaseTimer(RunContext* context, const char* name)
      : context_(context), name_(name) {
    if (context_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() { Stop(); }

  /// Ends the phase early; returns the measured seconds (0 on no-op or if
  /// already stopped).
  double Stop() {
    if (context_ == nullptr || stopped_) return 0.0;
    stopped_ = true;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    context_->AddPhase(name_, seconds);
    return seconds;
  }

 private:
  RunContext* context_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace madnet::obs

#endif  // MADNET_OBS_RUN_CONTEXT_H_
