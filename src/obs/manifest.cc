// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/manifest.h"

#include <cstdio>
#include <thread>

namespace madnet::obs {

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string HashHex(std::string_view bytes) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(bytes)));
  return buf;
}

std::string Manifest::GitDescribe() {
#ifdef MADNET_GIT_DESCRIBE
  return MADNET_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string Manifest::BuildType() {
#ifdef MADNET_BUILD_TYPE
  return MADNET_BUILD_TYPE;
#else
  return "unknown";
#endif
}

unsigned Manifest::HostCores() {
  const unsigned cores = std::thread::hardware_concurrency();
  return cores == 0 ? 1 : cores;
}

void Manifest::WriteJson(JsonWriter* json) const {
  json->BeginObject();
  json->Key("git_describe");
  json->Value(git_describe);
  json->Key("build_type");
  json->Value(build_type);
  json->Key("config_hash");
  json->Value(config_hash);
  json->Key("base_seed");
  json->Value(base_seed);
  json->Key("replications");
  json->Value(replications);
  json->Key("jobs");
  json->Value(jobs);
  json->Key("host_cores");
  json->Value(static_cast<uint64_t>(host_cores));
  json->Key("wall_s");
  json->Value(wall_s);
  json->EndObject();
}

}  // namespace madnet::obs
