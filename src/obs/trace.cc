// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/trace.h"

#include <cstdio>

#include "obs/flight_recorder.h"
#include "util/logging.h"

namespace madnet::obs {
namespace {

/// Index of a single-bit category in [0, kTraceCategoryCount).
int CategoryIndex(uint32_t category) {
  int index = 0;
  while ((category >> index) != 1u) ++index;
  return index;
}

}  // namespace

const char* TraceCategoryName(uint32_t category) {
  switch (category) {
    case kTraceEvent: return "event";
    case kTraceTx: return "tx";
    case kTraceRx: return "rx";
    case kTraceSuppress: return "suppress";
    case kTraceSketch: return "sketch";
    case kTraceFault: return "fault";
    case kTraceDeliver: return "deliver";
  }
  return "?";
}

[[nodiscard]] StatusOr<uint32_t> ParseTraceCategories(const std::string& csv) {
  uint32_t mask = 0;
  std::string name;
  for (size_t i = 0; i <= csv.size(); ++i) {
    if (i < csv.size() && csv[i] != ',') {
      if (csv[i] != ' ') name += csv[i];
      continue;
    }
    if (name.empty()) continue;
    if (name == "all") mask |= kTraceAll;
    else if (name == "none") mask |= 0;
    else if (name == "event") mask |= kTraceEvent;
    else if (name == "tx") mask |= kTraceTx;
    else if (name == "rx") mask |= kTraceRx;
    else if (name == "suppress") mask |= kTraceSuppress;
    else if (name == "sketch") mask |= kTraceSketch;
    else if (name == "fault") mask |= kTraceFault;
    else if (name == "deliver") mask |= kTraceDeliver;
    else {
      return Status::InvalidArgument(
          "unknown trace category '" + name +
          "' (want event, tx, rx, suppress, sketch, fault, deliver, all, "
          "none)");
    }
    name.clear();
  }
  return mask;
}

Trace::Trace(const TraceOptions& options) : options_(options) {
  if (options_.sample_period == 0) options_.sample_period = 1;
  // A run's trace is typically tens of thousands of small records; start
  // with a page-sized buffer so early appends don't reallocate repeatedly.
  if (options_.categories != 0) text_.reserve(4096);
}

void Trace::SetFlightRecorder(FlightRecorder* recorder) {
  recorder_ = recorder;
  recorder_categories_ = recorder != nullptr ? kTraceAll : 0u;
}

bool Trace::Sample(uint32_t category) {
  if (options_.sample_period == 1) {
    ++records_kept_;
    return true;
  }
  uint64_t& counter = sample_counters_[CategoryIndex(category)];
  const bool keep = (counter % options_.sample_period) == 0;
  ++counter;
  if (keep) {
    ++records_kept_;
  } else {
    ++records_sampled_out_;
  }
  return keep;
}

void Trace::BeginRun(uint64_t seed, const std::string& config_hash_hex) {
  if (recorder_ != nullptr) {
    FlightRecord note;
    note.category = 0;
    note.a = seed;
    recorder_->Note(note);
  }
  if (options_.categories == 0) return;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"run\",\"seed\":%llu,\"config\":\"%s\"}\n",
                static_cast<unsigned long long>(seed),
                config_hash_hex.c_str());
  text_ += buf;
  ++records_kept_;
}

void Trace::Event(double t, uint64_t seq) {
  if (recorder_ != nullptr) {
    FlightRecord note;
    note.category = kTraceEvent;
    note.t = t;
    note.a = seq;
    recorder_->Note(note);
  }
  if (!TextEnabled(kTraceEvent) || !Sample(kTraceEvent)) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"event\",\"t\":%.9f,\"seq\":%llu}\n", t,
                static_cast<unsigned long long>(seq));
  text_ += buf;
}

void Trace::Tx(double t, uint32_t node, double x, double y, uint32_t bytes,
               uint64_t tx_seq) {
  if (recorder_ != nullptr) {
    FlightRecord note;
    note.category = kTraceTx;
    note.t = t;
    note.a = node;
    note.b = bytes;
    note.c = tx_seq;
    note.v = x;
    note.w = y;
    recorder_->Note(note);
  }
  if (!TextEnabled(kTraceTx) || !Sample(kTraceTx)) return;
  char buf[160];
  std::snprintf(
      buf, sizeof(buf),
      "{\"cat\":\"tx\",\"t\":%.9f,\"node\":%u,\"x\":%.3f,\"y\":%.3f,"
      "\"bytes\":%u,\"seq\":%llu}\n",
      t, node, x, y, bytes, static_cast<unsigned long long>(tx_seq));
  text_ += buf;
}

void Trace::Rx(double t, uint32_t from, uint32_t to, uint32_t bytes,
               uint64_t ad_key, uint64_t tx_seq) {
  if (recorder_ != nullptr) {
    FlightRecord note;
    note.category = kTraceRx;
    note.t = t;
    note.a = from;
    note.b = to;
    note.c = ad_key;
    note.d = tx_seq;
    note.v = bytes;
    recorder_->Note(note);
  }
  if (!TextEnabled(kTraceRx) || !Sample(kTraceRx)) return;
  char buf[176];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"rx\",\"t\":%.9f,\"from\":%u,\"node\":%u,"
                "\"bytes\":%u,\"ad\":%llu,\"seq\":%llu}\n",
                t, from, to, bytes, static_cast<unsigned long long>(ad_key),
                static_cast<unsigned long long>(tx_seq));
  text_ += buf;
}

void Trace::Deliver(double t, uint32_t node, uint64_t ad_key, uint32_t hop,
                    uint64_t tx_seq, uint32_t parent) {
  if (recorder_ != nullptr) {
    FlightRecord note;
    note.category = kTraceDeliver;
    note.t = t;
    note.a = node;
    note.b = ad_key;
    note.c = tx_seq;
    note.d = parent;
    note.v = hop;
    recorder_->Note(note);
  }
  if (!TextEnabled(kTraceDeliver) || !Sample(kTraceDeliver)) return;
  char buf[176];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"deliver\",\"t\":%.9f,\"node\":%u,\"ad\":%llu,"
                "\"hop\":%u,\"seq\":%llu,\"parent\":%u}\n",
                t, node, static_cast<unsigned long long>(ad_key), hop,
                static_cast<unsigned long long>(tx_seq), parent);
  text_ += buf;
}

void Trace::Suppress(double t, uint32_t node, uint64_t ad_key,
                     const char* reason, double value) {
  if (recorder_ != nullptr) {
    FlightRecord note;
    note.category = kTraceSuppress;
    note.t = t;
    note.a = node;
    note.b = ad_key;
    note.v = value;
    note.reason = reason;
    recorder_->Note(note);
  }
  if (!TextEnabled(kTraceSuppress) || !Sample(kTraceSuppress)) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"suppress\",\"t\":%.9f,\"node\":%u,\"ad\":%llu,"
                "\"reason\":\"%s\",\"v\":%.9g}\n",
                t, node, static_cast<unsigned long long>(ad_key), reason,
                value);
  text_ += buf;
}

void Trace::SketchMerge(double t, uint32_t node, uint64_t ad_key) {
  if (recorder_ != nullptr) {
    FlightRecord note;
    note.category = kTraceSketch;
    note.t = t;
    note.a = node;
    note.b = ad_key;
    recorder_->Note(note);
  }
  if (!TextEnabled(kTraceSketch) || !Sample(kTraceSketch)) return;
  char buf[112];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"sketch\",\"t\":%.9f,\"node\":%u,\"ad\":%llu}\n", t,
                node, static_cast<unsigned long long>(ad_key));
  text_ += buf;
}

void Trace::Fault(double t, uint32_t node, const char* kind, double value) {
  if (recorder_ != nullptr) {
    FlightRecord note;
    note.category = kTraceFault;
    note.t = t;
    note.a = node;
    note.v = value;
    note.reason = kind;
    recorder_->Note(note);
  }
  if (!TextEnabled(kTraceFault) || !Sample(kTraceFault)) return;
  char buf[144];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"fault\",\"t\":%.9f,\"node\":%u,"
                "\"reason\":\"%s\",\"v\":%.9g}\n",
                t, node, kind, value);
  text_ += buf;
}

}  // namespace madnet::obs
