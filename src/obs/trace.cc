// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/trace.h"

#include <cstdio>

#include "util/logging.h"

namespace madnet::obs {
namespace {

/// Index of a single-bit category in [0, kTraceCategoryCount).
int CategoryIndex(uint32_t category) {
  int index = 0;
  while ((category >> index) != 1u) ++index;
  return index;
}

}  // namespace

const char* TraceCategoryName(uint32_t category) {
  switch (category) {
    case kTraceEvent: return "event";
    case kTraceTx: return "tx";
    case kTraceRx: return "rx";
    case kTraceSuppress: return "suppress";
    case kTraceSketch: return "sketch";
    case kTraceFault: return "fault";
  }
  return "?";
}

[[nodiscard]] StatusOr<uint32_t> ParseTraceCategories(const std::string& csv) {
  uint32_t mask = 0;
  std::string name;
  for (size_t i = 0; i <= csv.size(); ++i) {
    if (i < csv.size() && csv[i] != ',') {
      if (csv[i] != ' ') name += csv[i];
      continue;
    }
    if (name.empty()) continue;
    if (name == "all") mask |= kTraceAll;
    else if (name == "none") mask |= 0;
    else if (name == "event") mask |= kTraceEvent;
    else if (name == "tx") mask |= kTraceTx;
    else if (name == "rx") mask |= kTraceRx;
    else if (name == "suppress") mask |= kTraceSuppress;
    else if (name == "sketch") mask |= kTraceSketch;
    else if (name == "fault") mask |= kTraceFault;
    else {
      return Status::InvalidArgument(
          "unknown trace category '" + name +
          "' (want event, tx, rx, suppress, sketch, fault, all, none)");
    }
    name.clear();
  }
  return mask;
}

Trace::Trace(const TraceOptions& options) : options_(options) {
  if (options_.sample_period == 0) options_.sample_period = 1;
  // A run's trace is typically tens of thousands of small records; start
  // with a page-sized buffer so early appends don't reallocate repeatedly.
  if (options_.categories != 0) text_.reserve(4096);
}

bool Trace::Sample(uint32_t category) {
  if (options_.sample_period == 1) {
    ++records_kept_;
    return true;
  }
  uint64_t& counter = sample_counters_[CategoryIndex(category)];
  const bool keep = (counter % options_.sample_period) == 0;
  ++counter;
  if (keep) {
    ++records_kept_;
  } else {
    ++records_sampled_out_;
  }
  return keep;
}

void Trace::BeginRun(uint64_t seed, const std::string& config_hash_hex) {
  if (options_.categories == 0) return;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"run\",\"seed\":%llu,\"config\":\"%s\"}\n",
                static_cast<unsigned long long>(seed),
                config_hash_hex.c_str());
  text_ += buf;
  ++records_kept_;
}

void Trace::Event(double t, uint64_t seq) {
  if (!Enabled(kTraceEvent) || !Sample(kTraceEvent)) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"event\",\"t\":%.9f,\"seq\":%llu}\n", t,
                static_cast<unsigned long long>(seq));
  text_ += buf;
}

void Trace::Tx(double t, uint32_t node, double x, double y, uint32_t bytes) {
  if (!Enabled(kTraceTx) || !Sample(kTraceTx)) return;
  char buf[128];
  std::snprintf(
      buf, sizeof(buf),
      "{\"cat\":\"tx\",\"t\":%.9f,\"node\":%u,\"x\":%.3f,\"y\":%.3f,"
      "\"bytes\":%u}\n",
      t, node, x, y, bytes);
  text_ += buf;
}

void Trace::Rx(double t, uint32_t from, uint32_t to, uint32_t bytes) {
  if (!Enabled(kTraceRx) || !Sample(kTraceRx)) return;
  char buf[112];
  std::snprintf(
      buf, sizeof(buf),
      "{\"cat\":\"rx\",\"t\":%.9f,\"from\":%u,\"node\":%u,\"bytes\":%u}\n", t,
      from, to, bytes);
  text_ += buf;
}

void Trace::Suppress(double t, uint32_t node, uint64_t ad_key,
                     const char* reason, double value) {
  if (!Enabled(kTraceSuppress) || !Sample(kTraceSuppress)) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"suppress\",\"t\":%.9f,\"node\":%u,\"ad\":%llu,"
                "\"reason\":\"%s\",\"v\":%.9g}\n",
                t, node, static_cast<unsigned long long>(ad_key), reason,
                value);
  text_ += buf;
}

void Trace::SketchMerge(double t, uint32_t node, uint64_t ad_key) {
  if (!Enabled(kTraceSketch) || !Sample(kTraceSketch)) return;
  char buf[112];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"sketch\",\"t\":%.9f,\"node\":%u,\"ad\":%llu}\n", t,
                node, static_cast<unsigned long long>(ad_key));
  text_ += buf;
}

void Trace::Fault(double t, uint32_t node, const char* kind, double value) {
  if (!Enabled(kTraceFault) || !Sample(kTraceFault)) return;
  char buf[144];
  std::snprintf(buf, sizeof(buf),
                "{\"cat\":\"fault\",\"t\":%.9f,\"node\":%u,"
                "\"reason\":\"%s\",\"v\":%.9g}\n",
                t, node, kind, value);
  text_ += buf;
}

}  // namespace madnet::obs
