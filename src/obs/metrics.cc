// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace madnet::obs {

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  MADNET_DCHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void FixedHistogram::Observe(double value) {
  // First bucket whose inclusive upper edge is >= value; everything above
  // the last edge lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<size_t>(it - bounds_.begin())] += 1;
  count_ += 1;
  sum_ += value;
}

Status FixedHistogram::MergeFrom(const FixedHistogram& other) {
  if (counts_.empty()) {
    *this = other;
    return Status::Ok();
  }
  if (other.counts_.empty()) return Status::Ok();  // Nothing to add.
  if (bounds_ != other.bounds_) {
    return Status::InvalidArgument(
        "FixedHistogram::MergeFrom: mismatched bucket bounds");
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return Status::Ok();
}

Status FixedHistogram::MergeBucketCounts(const uint64_t* counts,
                                         size_t n_buckets, double sum) {
  if (counts_.empty() || n_buckets != counts_.size()) {
    return Status::InvalidArgument(
        "FixedHistogram::MergeBucketCounts: bucket count mismatch");
  }
  uint64_t total = 0;
  for (size_t i = 0; i < n_buckets; ++i) {
    counts_[i] += counts[i];
    total += counts[i];
  }
  count_ += total;
  sum_ += sum;
  return Status::Ok();
}

double FixedHistogram::Quantile(double q) const {
  if (count_ == 0 || counts_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, interpolated).
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds_.size()) {
      // Overflow bucket: clamp to the largest finite edge (Prometheus
      // behaviour); with no finite edges at all, fall back to the mean.
      return bounds_.empty() ? Mean() : bounds_.back();
    }
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
    const double fraction =
        (target - before) / static_cast<double>(counts_[i]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds_.empty() ? Mean() : bounds_.back();
}

uint64_t* MetricsRegistry::Counter(const std::string& name) {
  return &counters_[name];
}

double* MetricsRegistry::Gauge(const std::string& name) {
  return &gauges_[name];
}

FixedHistogram* MetricsRegistry::Histogram(const std::string& name,
                                           std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, FixedHistogram(std::move(bounds))).first;
  }
  return &it->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] = value;  // Last merged-in registry wins (seed order).
  }
  for (const auto& [name, histogram] : other.histograms_) {
    const Status merged = histograms_[name].MergeFrom(histogram);
    if (!merged.ok()) {
      // Two replications of one sweep booked the same name with different
      // buckets — a programming error upstream. Keep this registry's
      // buckets and say so, instead of silently misaligning the counts.
      MADNET_LOG_ERROR("metrics merge skipped histogram '%s': %s",
                       name.c_str(), merged.ToString().c_str());
      MADNET_DCHECK(merged.ok());
    }
  }
}

void MetricsRegistry::WriteJsonFields(JsonWriter* json) const {
  json->Key("counters");
  json->BeginObject();
  for (const auto& [name, value] : counters_) {
    json->Key(name);
    json->Value(value);
  }
  json->EndObject();
  json->Key("gauges");
  json->BeginObject();
  for (const auto& [name, value] : gauges_) {
    json->Key(name);
    json->Value(value);
  }
  json->EndObject();
  json->Key("histograms");
  json->BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json->Key(name);
    json->BeginObject();
    json->Key("bounds");
    json->BeginArray();
    for (double bound : histogram.bounds()) json->Value(bound);
    json->EndArray();
    json->Key("counts");
    json->BeginArray();
    for (uint64_t count : histogram.counts()) json->Value(count);
    json->EndArray();
    json->Key("count");
    json->Value(histogram.count());
    json->Key("sum");
    json->Value(histogram.sum());
    json->EndObject();
  }
  json->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  WriteJsonFields(&json);
  json.EndObject();
  return json.TakeString();
}

}  // namespace madnet::obs
