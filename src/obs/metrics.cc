// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace madnet::obs {

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  MADNET_DCHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void FixedHistogram::Observe(double value) {
  // First bucket whose inclusive upper edge is >= value; everything above
  // the last edge lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<size_t>(it - bounds_.begin())] += 1;
  count_ += 1;
  sum_ += value;
}

void FixedHistogram::MergeFrom(const FixedHistogram& other) {
  if (counts_.empty()) {
    *this = other;
    return;
  }
  MADNET_DCHECK(bounds_ == other.bounds_);  // Merge requires equal buckets.
  for (size_t i = 0; i < counts_.size() && i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

uint64_t* MetricsRegistry::Counter(const std::string& name) {
  return &counters_[name];
}

double* MetricsRegistry::Gauge(const std::string& name) {
  return &gauges_[name];
}

FixedHistogram* MetricsRegistry::Histogram(const std::string& name,
                                           std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, FixedHistogram(std::move(bounds))).first;
  }
  return &it->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] = value;  // Last merged-in registry wins (seed order).
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].MergeFrom(histogram);
  }
}

void MetricsRegistry::WriteJsonFields(JsonWriter* json) const {
  json->Key("counters");
  json->BeginObject();
  for (const auto& [name, value] : counters_) {
    json->Key(name);
    json->Value(value);
  }
  json->EndObject();
  json->Key("gauges");
  json->BeginObject();
  for (const auto& [name, value] : gauges_) {
    json->Key(name);
    json->Value(value);
  }
  json->EndObject();
  json->Key("histograms");
  json->BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json->Key(name);
    json->BeginObject();
    json->Key("bounds");
    json->BeginArray();
    for (double bound : histogram.bounds()) json->Value(bound);
    json->EndArray();
    json->Key("counts");
    json->BeginArray();
    for (uint64_t count : histogram.counts()) json->Value(count);
    json->EndArray();
    json->Key("count");
    json->Value(histogram.count());
    json->Key("sum");
    json->Value(histogram.sum());
    json->EndObject();
  }
  json->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  WriteJsonFields(&json);
  json.EndObject();
  return json.TakeString();
}

}  // namespace madnet::obs
