// Copyright (c) 2026 madnet authors. All rights reserved.

#include "obs/trace_query.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace madnet::obs {
namespace {

/// Issuer encoded in an AdId::Key() (issuer << 32 | sequence).
uint32_t IssuerOf(uint64_t ad_key) {
  return static_cast<uint32_t>(ad_key >> 32);
}

/// Nearest-rank quantile of an ascending-sorted vector.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  const size_t rank = static_cast<size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(sorted.size())),
                       static_cast<double>(sorted.size())));
  return sorted[rank - 1];
}

}  // namespace

const DeliveryRecord* AdTree::FindDelivery(uint32_t node) const {
  const auto it = delivery_index.find(node);
  return it == delivery_index.end() ? nullptr : &deliveries[it->second];
}

Status DisseminationForest::Add(const TraceEvent& event) {
  // Offline trace analysis: nothing on the simulation path calls Add();
  // the linter's "reachable from Medium::Broadcast" chain is a same-name
  // call-graph false positive (Trace::Sample vs InterestGenerator::Sample).
  if (event.cat == "run") {
    // NOLINTNEXTLINE(madnet-hot-transitive-alloc): heuristic false positive, see above.
    runs_.push_back(RunForest{event.seed, {}});
    tx_time_by_seq_.clear();
    return Status::Ok();
  }
  if (event.cat != "tx" && event.cat != "rx" && event.cat != "deliver") {
    return Status::Ok();  // Not a provenance record.
  }
  if (runs_.empty()) {
    return Status::InvalidArgument(
        "provenance record before any \"run\" header");
  }
  RunForest& run = runs_.back();

  if (event.cat == "tx") {
    // NOLINTNEXTLINE(madnet-hot-transitive-alloc): heuristic false positive, see above.
    if (event.seq != 0) tx_time_by_seq_.emplace(event.seq, event.t);
    return Status::Ok();
  }
  if (event.cat == "rx") {
    if (event.ad != 0) {
      AdTree& tree = run.ads[event.ad];
      tree.ad_key = event.ad;
      tree.issuer = IssuerOf(event.ad);
      tree.rx_frames += 1;
    }
    return Status::Ok();
  }

  // --- deliver ---
  if (event.ad == 0) {
    return Status::InvalidArgument("deliver record without ad key");
  }
  if (event.hop == 0) {
    return Status::InvalidArgument(
        "deliver record with hop 0 (the issuer's own copy is never "
        "delivered)");
  }
  AdTree& tree = run.ads[event.ad];
  tree.ad_key = event.ad;
  tree.issuer = IssuerOf(event.ad);
  if (event.node == tree.issuer) {
    return Status::InvalidArgument("deliver record back to the issuer");
  }
  if (tree.delivery_index.count(event.node) != 0) {
    return Status::InvalidArgument("duplicate deliver for one (node, ad)");
  }
  if (event.parent == tree.issuer) {
    if (event.hop != 1) {
      return Status::InvalidArgument(
          "deliver direct from the issuer must be hop 1");
    }
  } else {
    const DeliveryRecord* parent = tree.FindDelivery(event.parent);
    if (parent == nullptr) {
      return Status::InvalidArgument(
          "deliver parent has no earlier deliver record (parent-before-"
          "child violated)");
    }
    if (event.hop != parent->hop + 1) {
      return Status::InvalidArgument(
          "deliver hop is not parent's hop + 1 (hop monotonicity "
          "violated)");
    }
  }
  if (!tree.has_origin_tx) {
    if (event.hop == 1) {
      // The hop-1 delivering frame is the issuer's seed broadcast: its tx
      // time is the ad's true injection time.
      const auto tx = tx_time_by_seq_.find(event.seq);
      if (tx != tx_time_by_seq_.end()) {
        tree.origin_t = tx->second;
        tree.has_origin_tx = true;
      }
    }
    if (!tree.has_origin_tx && tree.deliveries.empty()) {
      tree.origin_t = event.t;  // Fallback: relative latencies.
    }
  }
  // NOLINTNEXTLINE(madnet-hot-transitive-alloc): heuristic false positive, see above.
  tree.delivery_index.emplace(event.node, tree.deliveries.size());
  // NOLINTNEXTLINE(madnet-hot-transitive-alloc): heuristic false positive, see above.
  tree.deliveries.push_back(
      DeliveryRecord{event.t, event.node, event.parent, event.hop,
                     event.seq});
  if (event.hop > tree.max_hop) tree.max_hop = event.hop;
  return Status::Ok();
}

Status DisseminationForest::AddFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string line;
  uint64_t line_number = 0;
  TraceEvent event;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    Status status = ParseTraceLine(line, &event);
    if (status.ok()) status = Add(event);
    if (!status.ok()) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) + ": " +
                                     status.ToString());
    }
  }
  if (in.bad()) return Status::Internal("read failure on " + path);
  return Status::Ok();
}

ForestStats DisseminationForest::Summarize() const {
  ForestStats stats;
  stats.runs = runs_.size();
  std::vector<double> latencies;
  for (const RunForest& run : runs_) {
    stats.ads += run.ads.size();
    for (const auto& [key, tree] : run.ads) {
      stats.deliveries += tree.deliveries.size();
      stats.rx_frames += tree.rx_frames;
      for (const DeliveryRecord& delivery : tree.deliveries) {
        stats.hop_histogram[delivery.hop] += 1;
        latencies.push_back(delivery.t - tree.origin_t);
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  stats.latency_p50 = SortedQuantile(latencies, 0.50);
  stats.latency_p99 = SortedQuantile(latencies, 0.99);
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double latency : latencies) sum += latency;
    stats.latency_mean = sum / static_cast<double>(latencies.size());
  }
  if (stats.deliveries > 0) {
    stats.redundancy_ratio = static_cast<double>(stats.rx_frames) /
                             static_cast<double>(stats.deliveries);
  }
  return stats;
}

std::string DisseminationForest::ReportJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("runs");
  json.BeginArray();
  std::vector<double> latencies;
  for (const RunForest& run : runs_) {
    json.BeginObject();
    json.Key("seed");
    json.Value(run.seed);
    json.Key("ads");
    json.BeginArray();
    for (const auto& [key, tree] : run.ads) {
      latencies.clear();
      latencies.reserve(tree.deliveries.size());
      for (const DeliveryRecord& delivery : tree.deliveries) {
        latencies.push_back(delivery.t - tree.origin_t);
      }
      std::sort(latencies.begin(), latencies.end());
      json.BeginObject();
      json.Key("ad");
      json.Value(key);
      json.Key("issuer");
      json.Value(static_cast<uint64_t>(tree.issuer));
      json.Key("deliveries");
      json.Value(static_cast<uint64_t>(tree.deliveries.size()));
      json.Key("max_hop");
      json.Value(static_cast<uint64_t>(tree.max_hop));
      json.Key("rx_frames");
      json.Value(tree.rx_frames);
      json.Key("origin_from_tx");
      json.Value(tree.has_origin_tx);
      json.Key("latency_p50");
      json.Value(SortedQuantile(latencies, 0.50));
      json.Key("latency_p99");
      json.Value(SortedQuantile(latencies, 0.99));
      // Coverage over time: the latency by which 25/50/75/90% of the
      // ad's eventual receivers had it.
      json.Key("t25");
      json.Value(SortedQuantile(latencies, 0.25));
      json.Key("t50");
      json.Value(SortedQuantile(latencies, 0.50));
      json.Key("t75");
      json.Value(SortedQuantile(latencies, 0.75));
      json.Key("t90");
      json.Value(SortedQuantile(latencies, 0.90));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  const ForestStats stats = Summarize();
  json.Key("summary");
  json.BeginObject();
  json.Key("runs");
  json.Value(stats.runs);
  json.Key("ads");
  json.Value(stats.ads);
  json.Key("deliveries");
  json.Value(stats.deliveries);
  json.Key("rx_frames");
  json.Value(stats.rx_frames);
  json.Key("latency_p50");
  json.Value(stats.latency_p50);
  json.Key("latency_p99");
  json.Value(stats.latency_p99);
  json.Key("latency_mean");
  json.Value(stats.latency_mean);
  json.Key("redundancy_ratio");
  json.Value(stats.redundancy_ratio);
  json.Key("hops");
  json.BeginObject();
  for (const auto& [hop, count] : stats.hop_histogram) {
    json.Key(std::to_string(hop));
    json.Value(count);
  }
  json.EndObject();
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

}  // namespace madnet::obs
