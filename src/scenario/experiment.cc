// Copyright (c) 2026 madnet authors. All rights reserved.

#include "scenario/experiment.h"

#include <cassert>

namespace madnet::scenario {

Aggregate RunReplicated(const ScenarioConfig& base, int replications) {
  assert(replications >= 1);
  Aggregate aggregate;
  for (int i = 0; i < replications; ++i) {
    ScenarioConfig config = base;
    config.seed = base.seed + static_cast<uint64_t>(i);
    RunResult result = RunScenario(config);
    aggregate.delivery_rate_percent.Add(result.DeliveryRatePercent());
    if (result.report.peers_delivered > 0) {
      aggregate.mean_delivery_time_s.Add(result.MeanDeliveryTime());
    }
    aggregate.messages.Add(static_cast<double>(result.Messages()));
    aggregate.peers_passed.Add(
        static_cast<double>(result.report.peers_passed));
    aggregate.final_rank.Add(result.final_rank);
  }
  return aggregate;
}

}  // namespace madnet::scenario
