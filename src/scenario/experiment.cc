// Copyright (c) 2026 madnet authors. All rights reserved.

#include "scenario/experiment.h"

#include <vector>

#include "exec/parallel_for.h"
#include "util/logging.h"

namespace madnet::scenario {

Aggregate RunReplicated(const ScenarioConfig& base, int replications,
                        int jobs) {
  MADNET_DCHECK_GE(replications, 1);

  // Each replication is a self-contained simulation (own Simulator, Medium
  // and RNG stream derived from its seed), so seeds can run concurrently
  // without any sharing. Results land in seed-indexed slots.
  std::vector<RunResult> results(static_cast<size_t>(replications));
  exec::ParallelFor(
      exec::ResolveJobs(jobs), results.size(), [&](size_t i) {
        ScenarioConfig config = base;
        config.seed = base.seed + static_cast<uint64_t>(i);
        results[i] = RunScenario(config);
      });

  // Merge strictly in seed order: Summary::Add sequences are then the same
  // as the serial path's, so aggregates are bit-identical for any jobs.
  // Precondition: every seed-indexed slot was filled by exactly one worker.
  MADNET_DCHECK_EQ(results.size(), static_cast<size_t>(replications));
  Aggregate aggregate;
  for (const RunResult& result : results) {
    aggregate.delivery_rate_percent.Add(result.DeliveryRatePercent());
    if (result.report.peers_delivered > 0) {
      aggregate.mean_delivery_time_s.Add(result.MeanDeliveryTime());
    }
    aggregate.messages.Add(static_cast<double>(result.Messages()));
    aggregate.peers_passed.Add(
        static_cast<double>(result.report.peers_passed));
    aggregate.final_rank.Add(result.final_rank);
  }
  return aggregate;
}

}  // namespace madnet::scenario
