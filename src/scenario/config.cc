// Copyright (c) 2026 madnet authors. All rights reserved.

#include "scenario/config.h"

#include <cmath>
#include <cstdio>
#include <string>

namespace madnet::scenario {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kFlooding: return "Flooding";
    case Method::kGossip: return "Gossiping";
    case Method::kOptimized1: return "Optimized Gossiping-1";
    case Method::kOptimized2: return "Optimized Gossiping-2";
    case Method::kOptimized: return "Optimized Gossiping";
    case Method::kResourceExchange: return "Resource Exchange";
  }
  return "?";
}

const char* MobilityName(Mobility mobility) {
  switch (mobility) {
    case Mobility::kRandomWaypoint: return "Random Waypoint";
    case Mobility::kManhattanGrid: return "Manhattan Grid";
    case Mobility::kHotspot: return "Hotspot Waypoint";
    case Mobility::kHighway: return "Highway Strip";
  }
  return "?";
}

ScenarioConfig ScenarioConfig::PaperDefaults() { return ScenarioConfig(); }

namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// "key 'peers' = 0: <requirement>" — the uniform shape of every
/// validation diagnostic, so a bad config file tells the user which key to
/// edit, what it held, and what would be accepted.
[[nodiscard]] Status BadKey(const char* key, const std::string& value,
                            const std::string& requirement) {
  return Status::InvalidArgument("key '" + std::string(key) + "' = " + value +
                                 ": " + requirement);
}

[[nodiscard]] Status BadKey(const char* key, double value,
                            const std::string& requirement) {
  return BadKey(key, Num(value), requirement);
}

}  // namespace

Status ScenarioConfig::Validate() const {
  // Finiteness first: a NaN/inf compares false against every range below,
  // so without this pass it could sail through checks written as
  // rejections of the complement.
  const struct { const char* key; double value; } numeric[] = {
      {"area", area_size_m},
      {"sim_time", sim_time_s},
      {"issue_time", issue_time_s},
      {"issue_x", issue_location.x},
      {"issue_y", issue_location.y},
      {"radius", initial_radius_m},
      {"duration", initial_duration_s},
      {"speed", mean_speed_mps},
      {"speed_delta", speed_delta_mps},
      {"pause_min", min_pause_s},
      {"pause_max", max_pause_s},
      {"manhattan_block", manhattan_block_m},
      {"hotspot_p", hotspot_probability},
      {"hotspot_sigma", hotspot_sigma_m},
      {"round", gossip.round_time_s},
      {"alpha", gossip.propagation.alpha},
      {"beta", gossip.propagation.beta},
      {"dis", gossip.dis_m},
      {"range", medium.range_m},
      {"max_speed", medium.max_speed_mps},
      {"loss", medium.loss_probability},
      {"fading", medium.fading_exponent},
  };
  for (const auto& field : numeric) {
    if (!std::isfinite(field.value)) {
      return BadKey(field.key, field.value, "must be a finite number");
    }
  }

  if (area_size_m <= 0.0) {
    return BadKey("area", area_size_m,
                  "accepted range (0, inf) metres — the arena is the square "
                  "[0, area] x [0, area]");
  }
  if (num_peers < 1) {
    // The issuer is node 0 by construction and is *not* one of the peers:
    // Scenario resolves issuer_id() to that extra stationary node and
    // peers occupy ids 1..num_peers. With peers = 0 the delivery metrics
    // have an empty audience and an 'issuer_offline' hand-off loses the ad
    // unconditionally, so the contract rejects it up front.
    return BadKey("peers", Num(num_peers),
                  "accepted range [1, inf) — the issuer (node 0, governed "
                  "by key 'issuer_offline') needs at least one mobile peer "
                  "to deliver to");
  }
  if (sim_time_s <= 0.0) {
    return BadKey("sim_time", sim_time_s, "accepted range (0, inf) seconds");
  }
  if (issue_time_s < 0.0 || issue_time_s >= sim_time_s) {
    return BadKey("issue_time", issue_time_s,
                  "accepted range [0, sim_time) with sim_time = " +
                      Num(sim_time_s) +
                      " — the ad must be issued inside the simulated window");
  }
  if (initial_radius_m <= 0.0) {
    return BadKey("radius", initial_radius_m,
                  "accepted range (0, inf) metres (the paper's R)");
  }
  if (initial_duration_s <= 0.0) {
    return BadKey("duration", initial_duration_s,
                  "accepted range (0, inf) seconds (the paper's D)");
  }
  if (issue_location.x < 0.0 || issue_location.x > area_size_m ||
      issue_location.y < 0.0 || issue_location.y > area_size_m) {
    return Status::InvalidArgument(
        "keys 'issue_x'/'issue_y' = (" + Num(issue_location.x) + ", " +
        Num(issue_location.y) + "): the issuing location must lie inside "
        "the arena [0, " + Num(area_size_m) + "]^2 (key 'area')");
  }
  if (speed_delta_mps < 0.0 || mean_speed_mps - speed_delta_mps <= 0.0) {
    return Status::InvalidArgument(
        "keys 'speed'/'speed_delta' = " + Num(mean_speed_mps) + "/" +
        Num(speed_delta_mps) +
        ": require speed > speed_delta >= 0 so every peer's uniform draw "
        "from [speed - speed_delta, speed + speed_delta] stays positive");
  }
  if (min_pause_s < 0.0 || max_pause_s < min_pause_s) {
    return Status::InvalidArgument(
        "keys 'pause_min'/'pause_max' = " + Num(min_pause_s) + "/" +
        Num(max_pause_s) + ": require 0 <= pause_min <= pause_max");
  }
  if (manhattan_block_m <= 0.0) {
    return BadKey("manhattan_block", manhattan_block_m,
                  "accepted range (0, inf) metres");
  }
  if (mobility == Mobility::kManhattanGrid &&
      manhattan_block_m > area_size_m / 2.0) {
    return BadKey("manhattan_block", manhattan_block_m,
                  "accepted range (0, area/2] = (0, " +
                      Num(area_size_m / 2.0) +
                      "] — the grid needs at least two blocks per side "
                      "(key 'area')");
  }
  if (hotspot_probability < 0.0 || hotspot_probability > 1.0) {
    return BadKey("hotspot_p", hotspot_probability,
                  "accepted range [0, 1] (probability of steering a "
                  "waypoint towards a hotspot)");
  }
  if (hotspot_sigma_m < 0.0) {
    return BadKey("hotspot_sigma", hotspot_sigma_m,
                  "accepted range [0, inf) metres");
  }
  if (hotspot_extra < 0) {
    return BadKey("hotspot_extra", Num(hotspot_extra),
                  "accepted range [0, inf) extra attraction points");
  }
  if (mobility == Mobility::kHotspot && hotspot_extra > 0 &&
      2.0 * hotspot_sigma_m >= area_size_m) {
    // Extra hotspot centres are placed at least one sigma inside every
    // wall; with 2*sigma >= area that placement band is empty (or
    // inverted) and the centres would land outside the arena.
    return BadKey("hotspot_sigma", hotspot_sigma_m,
                  "accepted range [0, area/2) = [0, " +
                      Num(area_size_m / 2.0) +
                      ") when hotspot_extra > 0 — extra hotspot centres "
                      "are placed one sigma inside the arena (key 'area')");
  }
  if (!gossip.propagation.Valid() || !flooding.propagation.Valid()) {
    return Status::InvalidArgument(
        "keys 'alpha'/'beta' = " + Num(gossip.propagation.alpha) + "/" +
        Num(gossip.propagation.beta) +
        ": both propagation parameters must lie in (0, 1)");
  }
  if (gossip.round_time_s <= 0.0 || flooding.round_time_s <= 0.0) {
    return BadKey("round", gossip.round_time_s,
                  "accepted range (0, inf) seconds (gossiping round time)");
  }
  if (gossip.cache_capacity < 1 || gossip.cache_capacity > 100000) {
    return BadKey("cache", Num(static_cast<double>(gossip.cache_capacity)),
                  "accepted range [1, 100000] cached ads (the paper's "
                  "top-k cache size)");
  }
  if (gossip.dis_m < 0.0 || gossip.dis_m > initial_radius_m) {
    return BadKey("dis", gossip.dis_m,
                  "accepted range [0, radius] = [0, " +
                      Num(initial_radius_m) +
                      "] — the Optimization-1 annulus cannot be wider than "
                      "the advertising radius (key 'radius'); 0 = auto "
                      "(V_max * round)");
  }
  if (exchange.beacon_interval_s <= 0.0 || exchange.memory_capacity < 1 ||
      exchange.exchange_batch < 1 || exchange.age_weight < 0.0 ||
      exchange.distance_weight < 0.0) {
    return Status::InvalidArgument(
        "invalid resource-exchange options: need beacon_interval > 0, "
        "memory_capacity >= 1, exchange_batch >= 1 and non-negative "
        "relevance weights");
  }
  if (medium.range_m <= 0.0 || medium.range_m > area_size_m) {
    return BadKey("range", medium.range_m,
                  "accepted range (0, area] = (0, " + Num(area_size_m) +
                      "] metres — a transmission range wider than the "
                      "arena (key 'area') makes every pair neighbours, "
                      "almost certainly a units typo");
  }
  if (medium.loss_probability < 0.0 || medium.loss_probability > 1.0) {
    return BadKey("loss", medium.loss_probability, "accepted range [0, 1]");
  }
  if (medium.fading_exponent < 0.0) {
    return BadKey("fading", medium.fading_exponent,
                  "accepted range [0, inf) (0 disables fading)");
  }
  if (medium.max_speed_mps < mean_speed_mps + speed_delta_mps) {
    return Status::InvalidArgument(
        "key 'max_speed' = " + Num(medium.max_speed_mps) +
        ": must cover the fastest mobile peer, speed + speed_delta = " +
        Num(mean_speed_mps + speed_delta_mps) +
        " (keys 'speed'/'speed_delta') — the spatial index uses it as "
        "staleness slack");
  }
  if (tiles < 0) {
    return BadKey("tiles", Num(tiles),
                  "accepted range [0, inf) — 0 means auto, 1 the single "
                  "shared event queue, K >= 2 a K x K tile grid");
  }
  if (tiles >= 2 && area_size_m / tiles < medium.range_m) {
    return Status::InvalidArgument(
        "key 'tiles' = " + Num(tiles) + ": tile edge area/tiles = " +
        Num(area_size_m / tiles) +
        " m is narrower than the transmission range (key 'range' = " +
        Num(medium.range_m) +
        " m) — a broadcast disc must span at most the 3 x 3 tile "
        "neighbourhood (docs/SHARDING.md); use fewer tiles or a larger "
        "arena");
  }
  Status fault_valid = fault.Validate();
  if (!fault_valid.ok()) return fault_valid;
  // Cross-field fault geometry/timing: the plan alone cannot know the
  // arena or the horizon, so these checks live here.
  if (fault.OutageEnabled()) {
    const Rect& r = fault.outage_rect;
    if (r.min.x < 0.0 || r.min.y < 0.0 || r.max.x > area_size_m ||
        r.max.y > area_size_m) {
      return Status::InvalidArgument(
          "keys 'outage_x0/y0/x1/y1' = (" + Num(r.min.x) + ", " +
          Num(r.min.y) + ")..(" + Num(r.max.x) + ", " + Num(r.max.y) +
          "): the jammer rectangle must lie inside the arena [0, " +
          Num(area_size_m) + "]^2 (key 'area') — an off-arena jammer "
          "jams nothing");
    }
    if (fault.outage_start_s >= sim_time_s) {
      return BadKey("outage_start", fault.outage_start_s,
                    "accepted range [0, sim_time) with sim_time = " +
                        Num(sim_time_s) +
                        " — a jammer switched on after the run ends never "
                        "fires");
    }
  }
  if (fault.ChurnEnabled() && fault.churn_start_s >= sim_time_s) {
    return BadKey("churn_start", fault.churn_start_s,
                  "accepted range [0, sim_time) with sim_time = " +
                      Num(sim_time_s) +
                      " — churn beginning after the run ends never fires");
  }
  if (fault.LossEpisodesEnabled() && fault.loss_start_s >= sim_time_s) {
    return BadKey("loss_start", fault.loss_start_s,
                  "accepted range [0, sim_time) with sim_time = " +
                      Num(sim_time_s) +
                      " — a loss episode beginning after the run ends "
                      "never fires");
  }
  return Status::Ok();
}

}  // namespace madnet::scenario
