// Copyright (c) 2026 madnet authors. All rights reserved.

#include "scenario/config.h"

namespace madnet::scenario {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kFlooding: return "Flooding";
    case Method::kGossip: return "Gossiping";
    case Method::kOptimized1: return "Optimized Gossiping-1";
    case Method::kOptimized2: return "Optimized Gossiping-2";
    case Method::kOptimized: return "Optimized Gossiping";
    case Method::kResourceExchange: return "Resource Exchange";
  }
  return "?";
}

const char* MobilityName(Mobility mobility) {
  switch (mobility) {
    case Mobility::kRandomWaypoint: return "Random Waypoint";
    case Mobility::kManhattanGrid: return "Manhattan Grid";
    case Mobility::kHotspot: return "Hotspot Waypoint";
  }
  return "?";
}

ScenarioConfig ScenarioConfig::PaperDefaults() { return ScenarioConfig(); }

Status ScenarioConfig::Validate() const {
  if (area_size_m <= 0.0) {
    return Status::InvalidArgument("area_size_m must be positive");
  }
  if (num_peers < 0) {
    return Status::InvalidArgument("num_peers must be non-negative");
  }
  if (sim_time_s <= 0.0 || issue_time_s < 0.0 || issue_time_s >= sim_time_s) {
    return Status::InvalidArgument(
        "need 0 <= issue_time_s < sim_time_s and sim_time_s > 0");
  }
  if (initial_radius_m <= 0.0 || initial_duration_s <= 0.0) {
    return Status::InvalidArgument("R and D must be positive");
  }
  if (issue_location.x < 0.0 || issue_location.x > area_size_m ||
      issue_location.y < 0.0 || issue_location.y > area_size_m) {
    return Status::InvalidArgument("issue_location outside the area");
  }
  if (speed_delta_mps < 0.0 || mean_speed_mps - speed_delta_mps <= 0.0) {
    return Status::InvalidArgument(
        "speeds must stay positive: mean_speed_mps > speed_delta_mps >= 0");
  }
  if (min_pause_s < 0.0 || max_pause_s < min_pause_s) {
    return Status::InvalidArgument("invalid pause bounds");
  }
  if (mobility == Mobility::kManhattanGrid &&
      (manhattan_block_m <= 0.0 || manhattan_block_m > area_size_m / 2.0)) {
    return Status::InvalidArgument(
        "manhattan_block_m must fit at least two blocks in the area");
  }
  if (mobility == Mobility::kHotspot &&
      (hotspot_probability < 0.0 || hotspot_probability > 1.0 ||
       hotspot_sigma_m < 0.0 || hotspot_extra < 0)) {
    return Status::InvalidArgument("invalid hotspot mobility options");
  }
  if (!gossip.propagation.Valid() || !flooding.propagation.Valid()) {
    return Status::InvalidArgument(
        "propagation parameters out of range (alpha, beta in (0,1))");
  }
  if (gossip.round_time_s <= 0.0 || flooding.round_time_s <= 0.0) {
    return Status::InvalidArgument("round times must be positive");
  }
  if (gossip.cache_capacity < 1) {
    return Status::InvalidArgument("cache capacity must be >= 1");
  }
  if (gossip.dis_m < 0.0) {
    return Status::InvalidArgument(
        "DIS must be non-negative (0 = auto: V_max * round time)");
  }
  if (exchange.beacon_interval_s <= 0.0 || exchange.memory_capacity < 1 ||
      exchange.exchange_batch < 1 || exchange.age_weight < 0.0 ||
      exchange.distance_weight < 0.0) {
    return Status::InvalidArgument("invalid resource-exchange options");
  }
  if (medium.range_m <= 0.0) {
    return Status::InvalidArgument("transmission range must be positive");
  }
  if (medium.max_speed_mps < mean_speed_mps + speed_delta_mps) {
    return Status::InvalidArgument(
        "medium.max_speed_mps must cover the fastest mobile peer");
  }
  Status fault_valid = fault.Validate();
  if (!fault_valid.ok()) return fault_valid;
  return Status::Ok();
}

}  // namespace madnet::scenario
