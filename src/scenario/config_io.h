// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Text persistence for ScenarioConfig: a flat "key = value" format ('#'
// comments, blank lines allowed) so experiment setups can be versioned and
// shared, and `madnet_run --config=file` reproduces them exactly. The full
// schema — every key, type, accepted range, default and cross-field
// constraint — is documented in docs/scenario_schema.md; the shipped
// corpus under scenarios/ exercises it end to end.
//
// Example:
//   # Table II, sparse point
//   method = gossip
//   peers = 100
//   radius = 1000
//   duration = 800
//   seed = 7
//
// The contract is fail-fast: every malformed line, unknown key, garbage
// value or cross-field inconsistency is rejected with a diagnostic naming
// the key, the offending value and the accepted range, *before* any
// simulator state exists.

#ifndef MADNET_SCENARIO_CONFIG_IO_H_
#define MADNET_SCENARIO_CONFIG_IO_H_

#include <string>
#include <vector>

#include "scenario/config.h"

namespace madnet::scenario {

/// One "key = value" assignment read from a config file, with its 1-based
/// line number for diagnostics.
struct ConfigEntry {
  std::string key;
  std::string value;
  int line = 0;
};

/// Reads every assignment of a config file ('#' comments and blank lines
/// skipped) without interpreting the keys. Shared by the single-ad and
/// multi-ad loaders so both report identical "path:line:" diagnostics.
[[nodiscard]]
StatusOr<std::vector<ConfigEntry>> ReadConfigEntries(const std::string& path);

/// Applies one "key = value" assignment to `config`. Unknown keys and
/// malformed values return InvalidArgument naming the key and the
/// offending token. Keys match madnet_run's flag names (method, mobility,
/// peers, area, issue_x, issue_y, radius, duration, sim_time, issue_time,
/// speed, speed_delta, max_speed, pause_min, pause_max, manhattan_block,
/// hotspot_p, hotspot_sigma, hotspot_extra, round, alpha, beta, dis,
/// cache, range, loss, fading, collisions, csma, ranking, issuer_offline,
/// tiles, seed) plus the fault plan (churn_rate, churn_up, churn_down,
/// churn_crash, churn_start, loss_extra, loss_episode, loss_period,
/// loss_start, outage_x0/y0/x1/y1, outage_start, outage_end — see
/// docs/FAULTS.md). 'area' recenters issue_location; set issue_x/issue_y
/// *after* area to place the issuer off-centre. 'speed'/'speed_delta'
/// raise medium.max_speed_mps as needed so a fast scenario round-trips
/// without an explicit 'max_speed'.
[[nodiscard]]
Status ApplyConfigKey(const std::string& key, const std::string& value,
                      ScenarioConfig* config);

/// Loads a config file on top of `*config` (which supplies defaults for
/// unmentioned keys). The result is validated before returning; no invalid
/// configuration ever leaves this function.
[[nodiscard]]
Status LoadConfigFile(const std::string& path, ScenarioConfig* config);

/// Serializes the settable keys of a config in the same format. Every key
/// written here re-parses to an identical config (round-trip contract,
/// covered by scenario_config_io_test).
std::string SaveConfigText(const ScenarioConfig& config);

}  // namespace madnet::scenario

#endif  // MADNET_SCENARIO_CONFIG_IO_H_
