// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Text persistence for ScenarioConfig: a flat "key = value" format ('#'
// comments, blank lines allowed) so experiment setups can be versioned and
// shared, and `madnet_run --config=file` reproduces them exactly.
//
// Example:
//   # Table II, sparse point
//   method = gossip
//   peers = 100
//   radius = 1000
//   duration = 800
//   seed = 7

#ifndef MADNET_SCENARIO_CONFIG_IO_H_
#define MADNET_SCENARIO_CONFIG_IO_H_

#include <string>

#include "scenario/config.h"

namespace madnet::scenario {

/// Applies one "key = value" assignment to `config`. Unknown keys and
/// malformed values return InvalidArgument. Keys match madnet_run's flag
/// names (method, mobility, peers, area, radius, duration, sim_time,
/// issue_time, speed, speed_delta, round, alpha, beta, dis, cache, range,
/// loss, collisions, csma, ranking, issuer_offline, seed) plus the fault
/// plan (churn_rate, churn_up, churn_down, churn_crash, churn_start,
/// loss_extra, loss_episode, loss_period, loss_start, outage_x0/y0/x1/y1,
/// outage_start, outage_end — see docs/FAULTS.md).
[[nodiscard]]
Status ApplyConfigKey(const std::string& key, const std::string& value,
                      ScenarioConfig* config);

/// Loads a config file on top of `*config` (which supplies defaults for
/// unmentioned keys). The result is validated before returning.
[[nodiscard]]
Status LoadConfigFile(const std::string& path, ScenarioConfig* config);

/// Serializes the settable keys of a config in the same format.
std::string SaveConfigText(const ScenarioConfig& config);

}  // namespace madnet::scenario

#endif  // MADNET_SCENARIO_CONFIG_IO_H_
