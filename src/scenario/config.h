// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Scenario configuration — the paper's Table II / Table III parameters plus
// every reconstruction default (see DESIGN.md "Parameter reconstruction").
// One ScenarioConfig fully determines a run: same config + same seed =>
// identical results.

#ifndef MADNET_SCENARIO_CONFIG_H_
#define MADNET_SCENARIO_CONFIG_H_

#include <string>

#include "core/interest.h"
#include "core/opportunistic_gossip.h"
#include "core/resource_exchange.h"
#include "core/restricted_flooding.h"
#include "fault/fault_plan.h"
#include "net/medium.h"
#include "util/status.h"

namespace madnet::scenario {

/// Which advertising protocol the scenario's peers run — the paper's five
/// compared methods.
enum class Method {
  kFlooding,    ///< Restricted Flooding (baseline, Section III-B).
  kGossip,      ///< Pure Opportunistic Gossiping (Section III-C).
  kOptimized1,  ///< Gossip + Optimization 1 (annulus).
  kOptimized2,  ///< Gossip + Optimization 2 (postpone).
  kOptimized,   ///< Gossip + both optimizations ("Optimized Gossiping").
  /// Extension beyond the paper's five: the related-work exchange-at-
  /// encounter model (Section II), for head-to-head comparison.
  kResourceExchange,
};

/// Human-readable method name, as the paper's figure legends spell it.
const char* MethodName(Method method);

/// Which mobility model the peers follow. The paper evaluates Random
/// Waypoint; the others are extensions (urban streets, waypoints biased
/// towards attraction points such as the issuing shop, and straight-line
/// vehicular motion along a highway strip).
enum class Mobility {
  kRandomWaypoint,
  kManhattanGrid,
  kHotspot,
  /// Constant-velocity lanes: each peer keeps a fixed y (its lane) and
  /// drives along x at its drawn speed, reflecting at the arena walls —
  /// the vehicular highway-strip regime of the scenario corpus.
  kHighway,
};

/// Human-readable mobility model name.
const char* MobilityName(Mobility mobility);

/// Full description of one simulation run.
struct ScenarioConfig {
  // --- Population & area (Table II defaults) ---
  double area_size_m = 5000.0;  ///< Square side; area is [0, s] x [0, s].
  int num_peers = 300;          ///< Mobile peers (excluding the issuer).
  uint64_t seed = 1;            ///< Root of all randomness in the run.

  // --- Timing ---
  double sim_time_s = 2000.0;   ///< Total simulated time.
  double issue_time_s = 60.0;   ///< When the advertisement is issued.

  // --- The advertisement ---
  Vec2 issue_location{2500.0, 2500.0};  ///< Centre of the area.
  double initial_radius_m = 1000.0;     ///< R.
  double initial_duration_s = 800.0;    ///< D.
  core::AdContent content{"petrol", {"petrol", "discount"},
                          "unleaded 95 at 1.09/L until 10am"};

  // --- Mobility ---
  Mobility mobility = Mobility::kRandomWaypoint;
  double mean_speed_mps = 10.0;  ///< Speeds uniform in mean +- delta.
  double speed_delta_mps = 5.0;
  double min_pause_s = 0.0;      ///< Pause bounds at each waypoint (not in
  double max_pause_s = 10.0;     ///< the paper's tables; see DESIGN.md).
  /// Manhattan grid: street spacing (kManhattanGrid only).
  double manhattan_block_m = 500.0;
  /// Hotspot model: attraction-point pull (kHotspot only). The issue
  /// location is always a hotspot; `hotspot_extra` adds that many more at
  /// deterministic pseudo-random positions.
  double hotspot_probability = 0.6;
  double hotspot_sigma_m = 200.0;
  int hotspot_extra = 3;

  // --- Protocol ---
  Method method = Method::kOptimized;
  /// Gossip parameters; `annulus` and `postpone` are overridden by
  /// `method`, everything else applies as given.
  core::GossipOptions gossip;
  core::RestrictedFlooding::Options flooding;
  core::ResourceExchange::Options exchange;
  /// When true, gossip issuers seed the ad once and go offline — the
  /// paper's robustness argument (Section III-C). Default false, matching
  /// the paper's *evaluation*: the issuer keeps participating as an
  /// ordinary gossiping peer. In sparse networks a fire-and-forget issuer
  /// frequently has no neighbour at issue time and the ad is lost ("if all
  /// peers within an advertising area accidentally leave ... the issuer
  /// peer has to broadcast the advertisement again"); flooding issuers
  /// always stay online.
  bool issuer_goes_offline = false;

  // --- PHY / MAC ---
  net::Medium::Options medium;

  // --- Execution plan (docs/SHARDING.md; never changes results) ---
  /// Spatial tiling of the event loop: K means a K x K tile grid over the
  /// arena, 1 means the classic single shared event queue, 0 means auto
  /// (pick a grid from num_peers at scenario build time). Tile edges must
  /// stay >= the radio range so a broadcast disc spans at most the 3 x 3
  /// tile neighbourhood (Validate enforces area / tiles >= range).
  int tiles = 1;

  // --- Fault injection (churn / loss episodes / outage; all off by
  // default — see docs/FAULTS.md) ---
  fault::FaultPlan fault;

  // --- Interests (ranking experiments only) ---
  bool assign_interests = false;
  core::InterestGenerator::Options interest_options;

  /// The paper's Table II configuration (which these defaults already
  /// encode); provided for explicitness in benches.
  static ScenarioConfig PaperDefaults();

  /// Checks cross-field consistency (positive sizes, speed bounds, medium
  /// max speed covering mobility speeds, fault geometry inside the arena,
  /// ...). Every rejection names the offending config-file key(s), the bad
  /// value, and the accepted range, so a config error is actionable before
  /// any simulator state exists — see docs/scenario_schema.md for the full
  /// contract.
  [[nodiscard]] Status Validate() const;
};

}  // namespace madnet::scenario

#endif  // MADNET_SCENARIO_CONFIG_H_
