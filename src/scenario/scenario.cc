// Copyright (c) 2026 madnet authors. All rights reserved.

#include "scenario/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>
#include <vector>

#include "core/opportunistic_gossip.h"
#include "core/restricted_flooding.h"
#include "mobility/constant_velocity.h"
#include "mobility/hotspot_waypoint.h"
#include "mobility/manhattan_grid.h"
#include "mobility/random_waypoint.h"
#include "obs/manifest.h"
#include "scenario/config_io.h"
#include "util/logging.h"

namespace madnet::scenario {

namespace {
// The issuer broadcasts at issue time; deliveries land within milliseconds.
// A gossip issuer that "goes offline" does so shortly after.
constexpr double kIssuerOfflineDelay = 1.0;
}  // namespace

Scenario::Scenario(const ScenarioConfig& config, obs::RunContext* obs)
    : config_(config), obs_(obs), log_clock_(simulator_.NowHandle()) {
  obs::PhaseTimer setup_timer(obs_, "setup");
  Status valid = config_.Validate();
  assert(valid.ok() && "invalid ScenarioConfig");
  (void)valid;

  // Fold the per-method optimization switches into the gossip options.
  switch (config_.method) {
    case Method::kFlooding: break;
    case Method::kResourceExchange: break;
    case Method::kGossip:
      config_.gossip.annulus = false;
      config_.gossip.postpone = false;
      break;
    case Method::kOptimized1:
      config_.gossip.annulus = true;
      config_.gossip.postpone = false;
      break;
    case Method::kOptimized2:
      config_.gossip.annulus = false;
      config_.gossip.postpone = true;
      break;
    case Method::kOptimized:
      config_.gossip.annulus = true;
      config_.gossip.postpone = true;
      break;
  }

  Rng root(config_.seed);
  medium_ = std::make_unique<net::Medium>(config_.medium, &simulator_,
                                          root.Fork(0x4D454449));  // "MEDI"

  // Spatial sharding (docs/SHARDING.md). Must precede every Schedule call,
  // so it sits before protocol/fault construction. tiles = 0 auto-sizes:
  // aim for ~1k peers per tile, capped by the range constraint (tile edge
  // >= radio range keeps a broadcast disc within the 3 x 3 neighbourhood).
  int per_side = config_.tiles;
  if (per_side == 0) {
    const int max_by_range = std::max(
        1, static_cast<int>(config_.area_size_m / config_.medium.range_m));
    const int by_peers = std::max(
        1, static_cast<int>(std::sqrt(config_.num_peers / 1024.0)));
    per_side = std::min(max_by_range, by_peers);
  }
  if (per_side > 1) {
    grid_ = std::make_unique<sim::TileGrid>(config_.area_size_m,
                                            static_cast<uint32_t>(per_side));
    // The conservative lookahead is the shortest delay any cross-tile
    // effect can take: the medium's minimum delivery latency (CSMA frames
    // take at least mac_overhead of airtime, which is >= min_latency in
    // every shipped config, so min_latency is a safe lower bound).
    simulator_.EnableSharding(grid_->tile_count(),
                              config_.medium.min_latency_s);
    medium_->SetShardGrid(grid_.get());
  }

  if (obs_ != nullptr) {
    // Header first, so every run's chunk is self-describing; then hand the
    // sink to the subsystems that emit records. The hash covers the folded
    // config (what actually ran), seed included — minus pure execution-plan
    // keys: `tiles` is normalized to 1 because tiling cannot change a
    // single trace byte (docs/SHARDING.md), and the hash must agree across
    // tile counts for exactly that reason (it is what the byte-identity
    // gates cmp).
    ScenarioConfig hashed = config_;
    hashed.tiles = 1;
    obs_->trace.BeginRun(config_.seed,
                         obs::HashHex(SaveConfigText(hashed)));
    simulator_.SetTrace(&obs_->trace);
    medium_->SetTrace(&obs_->trace);
    // Spatial load telemetry: one tile per radio range, so each tile is
    // one interference neighbourhood and the tile-load report reads as a
    // congestion map. Deliberately NOT the shard grid's edge: the load map
    // is a simulation observable and must stay byte-identical at any
    // `tiles` value (docs/SHARDING.md); per-scheduler-tile load lives in
    // the sim.shard.* counters instead. Summarized by CaptureMetrics.
    tiles_ = std::make_unique<obs::TileLoadMap>(config_.medium.range_m,
                                                config_.area_size_m);
    medium_->SetTileLoad(tiles_.get());
    // Inter-event virtual-time gaps: a spike at 0 means event storms, a
    // heavy right tail means the calendar queue idles between bursts.
    // The simulator buckets them inline; CaptureMetrics books the counts.
    simulator_.EnableDispatchGapTelemetry();
    // Per-tile busy seconds / executed events (observed sharded runs).
    if (simulator_.sharded()) simulator_.EnableShardTelemetry();
  }

  const int node_count = config_.num_peers + 1;  // Peers plus the issuer.
  mobilities_.reserve(node_count);
  protocols_.reserve(node_count);

  // Node 0: the issuer, stationary at the issuing location.
  mobilities_.push_back(
      std::make_unique<mobility::Stationary>(config_.issue_location));
  // Nodes 1..N: mobile peers.
  for (int i = 1; i <= config_.num_peers; ++i) {
    // Per-peer mobility streams draw from the reserved range
    // [0x10000, 0x20000), disjoint from every other Fork range.
    // NOLINTNEXTLINE(madnet-rng-fork-label): reserved range 0x10000+peer.
    mobilities_.push_back(MakeMobility(root.Fork(0x10000 + i)));
  }

  for (net::NodeId id = 0; id < static_cast<net::NodeId>(node_count); ++id) {
    Status added = medium_->AddNode(id, mobilities_[id].get());
    assert(added.ok());
    (void)added;
  }
  for (net::NodeId id = 0; id < static_cast<net::NodeId>(node_count); ++id) {
    // Per-node protocol streams draw from the reserved range
    // [0x20000, 0x30000), disjoint from every other Fork range.
    // NOLINTNEXTLINE(madnet-rng-fork-label): reserved range 0x20000+node.
    protocols_.push_back(MakeProtocol(id, root.Fork(0x20000 + id)));
    protocols_.back()->Start();
  }

  if (config_.fault.Enabled()) {
    // The injector draws from its own labelled fork, so enabling faults
    // leaves the medium/mobility/protocol streams untouched.
    injector_ = std::make_unique<fault::FaultInjector>(
        config_.fault, &simulator_, medium_.get(),
        root.Fork(0x4641554C));  // "FAUL"
    if (obs_ != nullptr) injector_->SetTrace(&obs_->trace);
    fault::FaultInjector::Hooks hooks;
    hooks.on_crash = [this](net::NodeId id) { protocols_[id]->OnCrash(); };
    hooks.on_rejoin = [this](net::NodeId id) { protocols_[id]->OnRejoin(); };
    // Only mobile peers churn; the issuer's availability is governed by
    // issuer_goes_offline alone.
    if (config_.num_peers > 0) {
      injector_->Arm(issuer_id() + 1,
                     issuer_id() + static_cast<net::NodeId>(config_.num_peers),
                     std::move(hooks));
    }
    if (obs_ != nullptr && obs_->flight_recorder == nullptr) {
      // Fault runs get a postmortem ring even when the session did not ask
      // for one: a crash under injected faults is exactly when the last few
      // hundred records matter. Recorder-only capture never gates on the
      // text mask, so the trace text stays byte-identical either way.
      recorder_ = std::make_unique<obs::FlightRecorder>();
      obs_->trace.SetFlightRecorder(recorder_.get());
      obs::RegisterCrashDump(recorder_.get(), config_.seed);
    }
  }
}

Scenario::~Scenario() {
  if (recorder_ != nullptr) {
    obs::UnregisterCrashDump(recorder_.get());
    obs_->trace.SetFlightRecorder(nullptr);
  }
}

std::unique_ptr<mobility::MobilityModel> MakePeerMobility(
    const ScenarioConfig& config, Rng rng) {
  const Rect area{{0.0, 0.0}, {config.area_size_m, config.area_size_m}};
  const double min_speed = config.mean_speed_mps - config.speed_delta_mps;
  const double max_speed = config.mean_speed_mps + config.speed_delta_mps;
  switch (config.mobility) {
    case Mobility::kManhattanGrid: {
      mobility::ManhattanGrid::Options options;
      options.area = area;
      options.block_size_m = config.manhattan_block_m;
      options.min_speed_mps = min_speed;
      options.max_speed_mps = max_speed;
      return std::make_unique<mobility::ManhattanGrid>(options, rng);
    }
    case Mobility::kHotspot: {
      mobility::HotspotWaypoint::Options options;
      options.area = area;
      options.min_speed_mps = min_speed;
      options.max_speed_mps = max_speed;
      options.min_pause_s = config.min_pause_s;
      options.max_pause_s = config.max_pause_s;
      options.hotspot_probability = config.hotspot_probability;
      // The issuing location is always an attraction point; extra hotspots
      // are placed deterministically from the scenario seed.
      options.hotspots.push_back({config.issue_location,
                                  config.hotspot_sigma_m, 2.0});
      Rng placer = Rng(config.seed).Fork(0x484F54);  // "HOT"
      const double margin = config.hotspot_sigma_m;
      for (int i = 0; i < config.hotspot_extra; ++i) {
        options.hotspots.push_back(
            {placer.UniformInRect(Rect{{margin, margin},
                                       {config.area_size_m - margin,
                                        config.area_size_m - margin}}),
             config.hotspot_sigma_m, 1.0});
      }
      return std::make_unique<mobility::HotspotWaypoint>(options, rng);
    }
    case Mobility::kHighway: {
      // Vehicular strip: a fixed lane (the start y) and a constant speed
      // along x, reflecting at the arena walls. Draw order (position,
      // speed, direction) is part of the determinism contract.
      const Vec2 start = rng.UniformInRect(area);
      const double speed = rng.Uniform(min_speed, max_speed);
      const double direction = rng.Uniform(0.0, 1.0) < 0.5 ? -1.0 : 1.0;
      return std::make_unique<mobility::ConstantVelocity>(
          area, start, Vec2{direction * speed, 0.0});
    }
    case Mobility::kRandomWaypoint:
      break;
  }
  mobility::RandomWaypoint::Options options;
  options.area = area;
  options.min_speed_mps = min_speed;
  options.max_speed_mps = max_speed;
  options.min_pause_s = config.min_pause_s;
  options.max_pause_s = config.max_pause_s;
  return std::make_unique<mobility::RandomWaypoint>(options, rng);
}

std::unique_ptr<mobility::MobilityModel> Scenario::MakeMobility(Rng rng) {
  return MakePeerMobility(config_, rng);
}

std::unique_ptr<core::Protocol> Scenario::MakeProtocol(net::NodeId id,
                                                       Rng rng) {
  core::ProtocolContext context;
  context.simulator = &simulator_;
  context.medium = medium_.get();
  context.self = id;
  context.delivery_log = &delivery_log_;
  context.rng = rng;
  context.trace = obs_ != nullptr ? &obs_->trace : nullptr;

  if (config_.method == Method::kFlooding) {
    return std::make_unique<core::RestrictedFlooding>(std::move(context),
                                                      config_.flooding);
  }
  if (config_.method == Method::kResourceExchange) {
    return std::make_unique<core::ResourceExchange>(std::move(context),
                                                    config_.exchange);
  }
  core::InterestProfile interests;
  if (config_.assign_interests) {
    core::InterestGenerator generator(config_.interest_options);
    Rng interest_rng = rng.Fork(0x494E54);  // "INT"
    interests = generator.Sample(&interest_rng);
  }
  return std::make_unique<core::OpportunisticGossip>(
      std::move(context), config_.gossip, std::move(interests));
}

RunResult Scenario::Run() {
  assert(!ran_ && "Scenario::Run may only be called once");
  ran_ = true;

  RunResult result;
  // Issue the advertisement at the configured time.
  simulator_.ScheduleAt(config_.issue_time_s, [this, &result]() {
    auto issued = protocols_[issuer_id()]->Issue(config_.content,
                                                 config_.initial_radius_m,
                                                 config_.initial_duration_s);
    assert(issued.ok());
    result.ad_key = issued->Key();
    issued_ad_key_ = result.ad_key;
    if (config_.method != Method::kFlooding && config_.issuer_goes_offline) {
      simulator_.Schedule(kIssuerOfflineDelay, [this]() {
        const Status off = medium_->SetOnline(issuer_id(), false);
        if (!off.ok()) {
          MADNET_LOG_ERROR("issuer %u could not go offline: %s",
                           static_cast<unsigned>(issuer_id()),
                           off.message().c_str());
        }
      });
    }
  });

  {
    obs::PhaseTimer loop_timer(obs_, "event_loop");
    simulator_.RunUntil(config_.sim_time_s);
  }
  obs::PhaseTimer aggregate_timer(obs_, "aggregate");

  // Metrics over the ad's life cycle within the simulated horizon.
  const double life_end = std::min(
      config_.issue_time_s + config_.initial_duration_s, config_.sim_time_s);
  stats::AreaTracker tracker(
      Circle{config_.issue_location, config_.initial_radius_m},
      config_.issue_time_s, life_end);
  for (int i = 1; i <= config_.num_peers; ++i) {
    tracker.Observe(static_cast<net::NodeId>(i), mobilities_[i].get());
  }
  result.report = ComputeDeliveryReport(tracker, delivery_log_, result.ad_key);
  result.net = medium_->stats();
  if (injector_ != nullptr) result.fault = injector_->stats();
  result.events_executed = simulator_.ExecutedEvents();

  // Ranking evidence: the most-enlarged surviving copy of the ad.
  for (const auto& protocol : protocols_) {
    const auto* gossip =
        dynamic_cast<const core::OpportunisticGossip*>(protocol.get());
    if (gossip == nullptr) continue;
    const core::CacheEntry* entry = gossip->cache().Find(result.ad_key);
    if (entry == nullptr) continue;
    result.final_rank =
        std::max(result.final_rank, core::EstimatedRank(entry->ad));
    result.final_radius_m = std::max(result.final_radius_m,
                                     entry->ad.radius_m);
    result.final_duration_s = std::max(result.final_duration_s,
                                       entry->ad.duration_s);
  }
  aggregate_timer.Stop();
  if (obs_ != nullptr) CaptureMetrics(result);
  return result;
}

void Scenario::CaptureMetrics(const RunResult& result) {
  obs::MetricsRegistry& metrics = obs_->metrics;
  *metrics.Counter("scenario.runs") += 1;
  *metrics.Counter("sim.events_executed") += result.events_executed;
  *metrics.Counter("net.messages_sent") += result.net.messages_sent;
  *metrics.Counter("net.bytes_sent") += result.net.bytes_sent;
  *metrics.Counter("net.deliveries") += result.net.deliveries;
  *metrics.Counter("net.dropped_loss") += result.net.dropped_loss;
  *metrics.Counter("net.dropped_collision") += result.net.dropped_collision;
  *metrics.Counter("net.dropped_offline") += result.net.dropped_offline;
  *metrics.Counter("net.dropped_jammed") += result.net.dropped_jammed;
  *metrics.Counter("net.dropped_mac_busy") += result.net.dropped_mac_busy;
  *metrics.Counter("net.mac_defers") += result.net.mac_defers;
  // Hot-path instrumentation: batched/memoized neighbour queries and the
  // frame arena (peaks sum across replications — divide by scenario.runs
  // for a mean per-run high water).
  *metrics.Counter("medium.batch_queries") += result.net.batch_queries;
  *metrics.Counter("medium.batch_walk_reuse") += result.net.batch_walk_reuse;
  *metrics.Counter("medium.batch_memo_hits") += result.net.batch_memo_hits;
  *metrics.Counter("medium.arena_frames_peak") += result.net.arena_frames_peak;
  if (injector_ != nullptr) {
    *metrics.Counter("fault.node_downs") += result.fault.node_downs;
    *metrics.Counter("fault.node_rejoins") += result.fault.node_rejoins;
    *metrics.Counter("fault.crashes") += result.fault.crashes;
    *metrics.Counter("fault.loss_episodes") += result.fault.loss_episodes;
    *metrics.Counter("fault.outages") += result.fault.outages;
  }
  metrics
      .Histogram("scenario.delivery_rate_percent",
                 {10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
      ->Observe(result.DeliveryRatePercent());
  metrics
      .Histogram("scenario.mean_delivery_time_s",
                 {1, 2, 5, 10, 20, 50, 100, 200, 500})
      ->Observe(result.MeanDeliveryTime());
  metrics.SetGauge("scenario.final_rank", result.final_rank);
  metrics.SetGauge("scenario.final_radius_m", result.final_radius_m);
  metrics.SetGauge("scenario.final_duration_s", result.final_duration_s);
  if (simulator_.dispatch_gap_telemetry_enabled()) {
    // The simulator bucketed the gaps inline (hot path); fold its counts
    // into a registry histogram with matching bounds here, once per run.
    obs::FixedHistogram* gaps = metrics.Histogram(
        "sim.dispatch_gap_s",
        std::vector<double>(std::begin(sim::Simulator::kDispatchGapBounds),
                            std::end(sim::Simulator::kDispatchGapBounds)));
    const Status booked = gaps->MergeBucketCounts(
        simulator_.dispatch_gap_counts(), sim::Simulator::kDispatchGapBuckets,
        simulator_.dispatch_gap_sum());
    MADNET_DCHECK(booked.ok());
    (void)booked;
  }
  if (simulator_.sharded()) {
    // Sharded-loop routing counters (docs/SHARDING.md). Gauges record the
    // run's grid; counters sum across replications like every other series.
    const sim::ShardStats& shard = simulator_.shard_stats();
    metrics.SetGauge("sim.shard.tiles",
                     static_cast<double>(simulator_.shard_tile_count()));
    *metrics.Counter("sim.shard.local_pushes") += shard.local_pushes;
    *metrics.Counter("sim.shard.cross_tile_handoffs") +=
        shard.cross_tile_handoffs;
    *metrics.Counter("sim.shard.migrations") += shard.migrations;
    *metrics.Counter("sim.shard.lookahead_violations") +=
        shard.lookahead_violations;
    if (std::isfinite(shard.min_handoff_lead_s)) {
      metrics.SetGauge("sim.shard.min_handoff_lead_s",
                       shard.min_handoff_lead_s);
    }
    *metrics.Counter("net.shard.cross_tile_deliveries") +=
        result.net.shard_cross_tile_deliveries;
    *metrics.Counter("net.shard.ghost_broadcasts") +=
        result.net.shard_ghost_broadcasts;
    const sim::ShardedEventQueue* queue = simulator_.sharded_queue();
    uint64_t peak_sum = 0;
    uint64_t peak_max = 0;
    for (uint32_t t = 0; t < queue->tile_count(); ++t) {
      const uint64_t peak = queue->TilePeak(t);
      peak_sum += peak;
      peak_max = std::max(peak_max, peak);
    }
    *metrics.Counter("sim.shard.tile_queue_peak_sum") += peak_sum;
    *metrics.Counter("sim.shard.tile_queue_peak_max") += peak_max;
    if (simulator_.shard_telemetry_enabled()) {
      // Per-tile wall-clock phase accounting: how evenly the execution
      // load spreads over tiles (the balance a parallel drain would see).
      double busy_sum = 0.0;
      double busy_max = 0.0;
      for (double busy : simulator_.tile_busy_s()) {
        busy_sum += busy;
        busy_max = std::max(busy_max, busy);
      }
      metrics.SetGauge("sim.shard.tile_busy_s_sum", busy_sum);
      metrics.SetGauge("sim.shard.tile_busy_s_max", busy_max);
    }
  }
  if (tiles_ != nullptr) tiles_->Summarize(&metrics);
}

mobility::TraceSet Scenario::RecordTraces(sim::Time horizon) {
  mobility::TraceSet traces;
  traces.reserve(mobilities_.size());
  for (size_t id = 0; id < mobilities_.size(); ++id) {
    traces.emplace_back(static_cast<uint32_t>(id),
                        mobility::Trace::Record(mobilities_[id].get(),
                                                horizon));
  }
  return traces;
}

RunResult RunScenario(const ScenarioConfig& config) {
  Scenario scenario(config);
  return scenario.Run();
}

RunResult RunScenario(const ScenarioConfig& config, obs::RunContext* obs) {
  Scenario scenario(config, obs);
  return scenario.Run();
}

}  // namespace madnet::scenario
