// Copyright (c) 2026 madnet authors. All rights reserved.

#include "scenario/multi_ad.h"

#include "scenario/scenario.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "core/opportunistic_gossip.h"
#include "core/resource_exchange.h"
#include "core/restricted_flooding.h"
#include "mobility/constant_velocity.h"
#include "mobility/random_waypoint.h"
#include "util/logging.h"

namespace madnet::scenario {

Status MultiAdConfig::Validate() const {
  Status base_status = base.Validate();
  if (!base_status.ok()) return base_status;
  if (num_ads < 1) return Status::InvalidArgument("need at least one ad");
  if (ad_radius_m <= 0.0 || ad_duration_s <= 0.0) {
    return Status::InvalidArgument("ad R and D must be positive");
  }
  if (first_issue_s < 0.0 || issue_spacing_s < 0.0) {
    return Status::InvalidArgument("issue schedule must be non-negative");
  }
  const double last_issue =
      first_issue_s + issue_spacing_s * (num_ads - 1);
  if (last_issue >= base.sim_time_s) {
    return Status::InvalidArgument("ads issued after the simulation ends");
  }
  if (2.0 * border_margin_m >= base.area_size_m) {
    return Status::InvalidArgument("border margin larger than the area");
  }
  return Status::Ok();
}

double MultiAdResult::MeanDeliveryRatePercent() const {
  double total = 0.0;
  int scored = 0;
  for (const PerAd& ad : ads) {
    if (ad.report.peers_passed == 0) continue;
    total += ad.report.DeliveryRatePercent();
    ++scored;
  }
  return scored == 0 ? 0.0 : total / scored;
}

double MultiAdResult::MeanDeliveryTime() const {
  double sum = 0.0;
  size_t count = 0;
  for (const PerAd& ad : ads) {
    sum += ad.report.delivery_times.Sum();
    count += ad.report.delivery_times.Count();
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

MultiAdResult RunMultiAdScenario(const MultiAdConfig& config) {
  Status valid = config.Validate();
  assert(valid.ok() && "invalid MultiAdConfig");
  (void)valid;

  // Fold the per-method switches into the gossip options, as Scenario does.
  core::GossipOptions gossip = config.base.gossip;
  switch (config.base.method) {
    case Method::kFlooding:
    case Method::kResourceExchange:
      break;
    case Method::kGossip:
      gossip.annulus = false;
      gossip.postpone = false;
      break;
    case Method::kOptimized1:
      gossip.annulus = true;
      gossip.postpone = false;
      break;
    case Method::kOptimized2:
      gossip.annulus = false;
      gossip.postpone = true;
      break;
    case Method::kOptimized:
      gossip.annulus = true;
      gossip.postpone = true;
      break;
  }

  sim::Simulator simulator;
  // Log records inside this run carry virtual time.
  const ScopedLogClock log_clock(simulator.NowHandle());
  Rng root(config.base.seed);
  net::Medium medium(config.base.medium, &simulator, root.Fork(0x4D414449));
  stats::DeliveryLog log;

  // Issue locations, uniform with a border margin.
  Rng placer = root.Fork(0x504C4143);  // "PLAC"
  const Rect placement{{config.border_margin_m, config.border_margin_m},
                       {config.base.area_size_m - config.border_margin_m,
                        config.base.area_size_m - config.border_margin_m}};

  MultiAdResult result;
  result.ads.resize(config.num_ads);
  for (int i = 0; i < config.num_ads; ++i) {
    result.ads[i].location = placer.UniformInRect(placement);
    result.ads[i].issue_time =
        config.first_issue_s + config.issue_spacing_s * i;
  }

  // Mobility: issuers stationary; peers follow config.base.mobility.
  const int node_count = config.num_ads + config.base.num_peers;
  std::vector<std::unique_ptr<mobility::MobilityModel>> mobilities;
  mobilities.reserve(node_count);
  for (int i = 0; i < config.num_ads; ++i) {
    mobilities.push_back(
        std::make_unique<mobility::Stationary>(result.ads[i].location));
  }
  for (int i = 0; i < config.base.num_peers; ++i) {
    // Per-peer mobility streams draw from the reserved range
    // [0x10000, 0x20000), mirroring scenario.cc.
    mobilities.push_back(MakePeerMobility(
        config.base,
        root.Fork(0x10000 + i)));  // NOLINT(madnet-rng-fork-label): reserved range 0x10000+peer.
  }

  std::vector<std::unique_ptr<core::Protocol>> protocols;
  protocols.reserve(node_count);
  for (net::NodeId id = 0; id < static_cast<net::NodeId>(node_count); ++id) {
    Status added = medium.AddNode(id, mobilities[id].get());
    assert(added.ok());
    (void)added;
    core::ProtocolContext context;
    context.simulator = &simulator;
    context.medium = &medium;
    context.self = id;
    context.delivery_log = &log;
    // Per-node protocol streams draw from the reserved range
    // [0x20000, 0x30000), mirroring scenario.cc.
    // NOLINTNEXTLINE(madnet-rng-fork-label): reserved range 0x20000+node.
    context.rng = root.Fork(0x20000 + id);
    switch (config.base.method) {
      case Method::kFlooding:
        protocols.push_back(std::make_unique<core::RestrictedFlooding>(
            std::move(context), config.base.flooding));
        break;
      case Method::kResourceExchange:
        protocols.push_back(std::make_unique<core::ResourceExchange>(
            std::move(context), config.base.exchange));
        break;
      default:
        protocols.push_back(std::make_unique<core::OpportunisticGossip>(
            std::move(context), gossip));
        break;
    }
    protocols.back()->Start();
  }

  // Schedule the issues.
  for (int i = 0; i < config.num_ads; ++i) {
    MultiAdResult::PerAd* ad = &result.ads[i];
    simulator.ScheduleAt(ad->issue_time, [&, ad, i]() {
      core::AdContent content = config.base.content;
      content.text += " #" + std::to_string(i);
      auto issued = protocols[i]->Issue(content, config.ad_radius_m,
                                        config.ad_duration_s);
      assert(issued.ok());
      ad->key = issued->Key();
    });
  }

  simulator.RunUntil(config.base.sim_time_s);

  // Per-ad reports over each ad's own life cycle; only mobile peers count.
  for (MultiAdResult::PerAd& ad : result.ads) {
    const double life_end = std::min(ad.issue_time + config.ad_duration_s,
                                     config.base.sim_time_s);
    stats::AreaTracker tracker(Circle{ad.location, config.ad_radius_m},
                               ad.issue_time, life_end);
    for (int i = 0; i < config.base.num_peers; ++i) {
      const net::NodeId id = static_cast<net::NodeId>(config.num_ads + i);
      tracker.Observe(id, mobilities[id].get());
    }
    ad.report = ComputeDeliveryReport(tracker, log, ad.key);
  }
  result.net = medium.stats();
  return result;
}

}  // namespace madnet::scenario
