// Copyright (c) 2026 madnet authors. All rights reserved.

#include "scenario/multi_ad.h"

#include "scenario/config_io.h"
#include "scenario/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>

#include "core/opportunistic_gossip.h"
#include "core/resource_exchange.h"
#include "core/restricted_flooding.h"
#include "mobility/constant_velocity.h"
#include "mobility/random_waypoint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace madnet::scenario {

namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

Status MultiAdConfig::Validate() const {
  Status base_status = base.Validate();
  if (!base_status.ok()) return base_status;
  if (num_ads < 1) {
    return Status::InvalidArgument(
        "key 'ads' = " + std::to_string(num_ads) +
        ": accepted range [1, inf) — a multi-ad scenario needs at least "
        "one advertisement");
  }
  if (ad_radius_m <= 0.0) {
    return Status::InvalidArgument(
        "key 'ad_radius' = " + Num(ad_radius_m) +
        ": accepted range (0, inf) metres");
  }
  if (ad_duration_s <= 0.0) {
    return Status::InvalidArgument(
        "key 'ad_duration' = " + Num(ad_duration_s) +
        ": accepted range (0, inf) seconds");
  }
  if (first_issue_s < 0.0 || issue_spacing_s < 0.0) {
    return Status::InvalidArgument(
        "keys 'first_issue'/'issue_spacing' = " +
        Num(first_issue_s) + "/" +
        Num(issue_spacing_s) +
        ": the issue schedule must be non-negative");
  }
  const double last_issue =
      first_issue_s + issue_spacing_s * (num_ads - 1);
  if (last_issue >= base.sim_time_s) {
    return Status::InvalidArgument(
        "keys 'ads'/'first_issue'/'issue_spacing': the last ad would be "
        "issued at " + Num(last_issue) +
        " s, at or after sim_time = " + Num(base.sim_time_s) +
        " s (key 'sim_time')");
  }
  if (2.0 * border_margin_m >= base.area_size_m) {
    return Status::InvalidArgument(
        "key 'border_margin' = " + Num(border_margin_m) +
        ": accepted range [0, area/2) = [0, " +
        Num(base.area_size_m / 2.0) +
        ") — the issue-location placement band must be non-empty "
        "(key 'area')");
  }
  if (num_stalls < 0) {
    return Status::InvalidArgument(
        "key 'stalls' = " + std::to_string(num_stalls) +
        ": accepted range [0, inf) (0 = one fresh location per ad)");
  }
  if (zipf_s < 0.0) {
    return Status::InvalidArgument(
        "key 'zipf' = " + Num(zipf_s) +
        ": accepted range [0, inf) (0 = uniform stall demand)");
  }
  if (base.fault.Enabled()) {
    return Status::InvalidArgument(
        "keys 'churn_rate'/'loss_extra'/'outage_*': fault plans are not "
        "supported in multi-ad scenarios (key 'ads') — the multi-ad "
        "harness builds no FaultInjector, so the plan would be silently "
        "ignored");
  }
  return Status::Ok();
}

double MultiAdResult::MeanDeliveryRatePercent() const {
  double total = 0.0;
  int scored = 0;
  for (const PerAd& ad : ads) {
    if (ad.report.peers_passed == 0) continue;
    total += ad.report.DeliveryRatePercent();
    ++scored;
  }
  return scored == 0 ? 0.0 : total / scored;
}

double MultiAdResult::MeanDeliveryTime() const {
  double sum = 0.0;
  size_t count = 0;
  for (const PerAd& ad : ads) {
    sum += ad.report.delivery_times.Sum();
    count += ad.report.delivery_times.Count();
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

MultiAdResult RunMultiAdScenario(const MultiAdConfig& config) {
  Status valid = config.Validate();
  assert(valid.ok() && "invalid MultiAdConfig");
  (void)valid;

  // Fold the per-method switches into the gossip options, as Scenario does.
  core::GossipOptions gossip = config.base.gossip;
  switch (config.base.method) {
    case Method::kFlooding:
    case Method::kResourceExchange:
      break;
    case Method::kGossip:
      gossip.annulus = false;
      gossip.postpone = false;
      break;
    case Method::kOptimized1:
      gossip.annulus = true;
      gossip.postpone = false;
      break;
    case Method::kOptimized2:
      gossip.annulus = false;
      gossip.postpone = true;
      break;
    case Method::kOptimized:
      gossip.annulus = true;
      gossip.postpone = true;
      break;
  }

  sim::Simulator simulator;
  // Log records inside this run carry virtual time.
  const ScopedLogClock log_clock(simulator.NowHandle());
  Rng root(config.base.seed);
  net::Medium medium(config.base.medium, &simulator, root.Fork(0x4D414449));
  stats::DeliveryLog log;

  // Issue locations, uniform with a border margin.
  Rng placer = root.Fork(0x504C4143);  // "PLAC"
  const Rect placement{{config.border_margin_m, config.border_margin_m},
                       {config.base.area_size_m - config.border_margin_m,
                        config.base.area_size_m - config.border_margin_m}};

  MultiAdResult result;
  result.ads.resize(config.num_ads);
  if (config.num_stalls > 0) {
    // Marketplace mode: fixed stalls, each ad drawn to a stall with Zipf
    // weight 1/(rank+1)^s — stall 0 is the most popular. Stall positions
    // first, then the per-ad draws, so adding ads never moves the stalls.
    std::vector<Vec2> stalls(config.num_stalls);
    for (Vec2& stall : stalls) stall = placer.UniformInRect(placement);
    std::vector<double> cumulative(config.num_stalls);
    double total = 0.0;
    for (int r = 0; r < config.num_stalls; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), config.zipf_s);
      cumulative[r] = total;
    }
    for (int i = 0; i < config.num_ads; ++i) {
      const double draw = placer.Uniform(0.0, total);
      const size_t stall = static_cast<size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), draw) -
          cumulative.begin());
      result.ads[i].location = stalls[std::min(
          stall, static_cast<size_t>(config.num_stalls - 1))];
    }
  } else {
    for (int i = 0; i < config.num_ads; ++i) {
      result.ads[i].location = placer.UniformInRect(placement);
    }
  }
  for (int i = 0; i < config.num_ads; ++i) {
    result.ads[i].issue_time =
        config.first_issue_s + config.issue_spacing_s * i;
  }

  // Mobility: issuers stationary; peers follow config.base.mobility.
  const int node_count = config.num_ads + config.base.num_peers;
  std::vector<std::unique_ptr<mobility::MobilityModel>> mobilities;
  mobilities.reserve(node_count);
  for (int i = 0; i < config.num_ads; ++i) {
    mobilities.push_back(
        std::make_unique<mobility::Stationary>(result.ads[i].location));
  }
  for (int i = 0; i < config.base.num_peers; ++i) {
    // Per-peer mobility streams draw from the reserved range
    // [0x10000, 0x20000), mirroring scenario.cc.
    mobilities.push_back(MakePeerMobility(
        config.base,
        root.Fork(0x10000 + i)));  // NOLINT(madnet-rng-fork-label): reserved range 0x10000+peer.
  }

  std::vector<std::unique_ptr<core::Protocol>> protocols;
  protocols.reserve(node_count);
  for (net::NodeId id = 0; id < static_cast<net::NodeId>(node_count); ++id) {
    Status added = medium.AddNode(id, mobilities[id].get());
    assert(added.ok());
    (void)added;
    core::ProtocolContext context;
    context.simulator = &simulator;
    context.medium = &medium;
    context.self = id;
    context.delivery_log = &log;
    // Per-node protocol streams draw from the reserved range
    // [0x20000, 0x30000), mirroring scenario.cc.
    // NOLINTNEXTLINE(madnet-rng-fork-label): reserved range 0x20000+node.
    context.rng = root.Fork(0x20000 + id);
    switch (config.base.method) {
      case Method::kFlooding:
        protocols.push_back(std::make_unique<core::RestrictedFlooding>(
            std::move(context), config.base.flooding));
        break;
      case Method::kResourceExchange:
        protocols.push_back(std::make_unique<core::ResourceExchange>(
            std::move(context), config.base.exchange));
        break;
      default:
        protocols.push_back(std::make_unique<core::OpportunisticGossip>(
            std::move(context), gossip));
        break;
    }
    protocols.back()->Start();
  }

  // Schedule the issues.
  for (int i = 0; i < config.num_ads; ++i) {
    MultiAdResult::PerAd* ad = &result.ads[i];
    simulator.ScheduleAt(ad->issue_time, [&, ad, i]() {
      core::AdContent content = config.base.content;
      content.text += " #" + std::to_string(i);
      auto issued = protocols[i]->Issue(content, config.ad_radius_m,
                                        config.ad_duration_s);
      assert(issued.ok());
      ad->key = issued->Key();
    });
  }

  simulator.RunUntil(config.base.sim_time_s);

  // Per-ad reports over each ad's own life cycle; only mobile peers count.
  for (MultiAdResult::PerAd& ad : result.ads) {
    const double life_end = std::min(ad.issue_time + config.ad_duration_s,
                                     config.base.sim_time_s);
    stats::AreaTracker tracker(Circle{ad.location, config.ad_radius_m},
                               ad.issue_time, life_end);
    for (int i = 0; i < config.base.num_peers; ++i) {
      const net::NodeId id = static_cast<net::NodeId>(config.num_ads + i);
      tracker.Observe(id, mobilities[id].get());
    }
    ad.report = ComputeDeliveryReport(tracker, log, ad.key);
  }
  result.net = medium.stats();
  return result;
}

bool IsMultiAdKey(const std::string& key) {
  return key == "ads" || key == "first_issue" || key == "issue_spacing" ||
         key == "ad_radius" || key == "ad_duration" ||
         key == "border_margin" || key == "stalls" || key == "zipf";
}

[[nodiscard]]
Status ApplyMultiAdConfigKey(const std::string& key, const std::string& value,
                             MultiAdConfig* config) {
  auto as_double = [&](double* field) -> Status {
    auto parsed = ParseDouble(value);
    if (!parsed.ok()) {
      return Status::InvalidArgument("key '" + key + "': " +
                                     parsed.status().message());
    }
    *field = *parsed;
    return Status::Ok();
  };
  auto as_count = [&](int* field) -> Status {
    auto parsed = ParseInt(value);
    if (!parsed.ok()) {
      return Status::InvalidArgument("key '" + key + "': " +
                                     parsed.status().message());
    }
    if (*parsed < 0) {
      return Status::InvalidArgument("key '" + key + "' = " + value +
                                     ": must be a non-negative integer");
    }
    *field = static_cast<int>(*parsed);
    return Status::Ok();
  };
  if (key == "ads") return as_count(&config->num_ads);
  if (key == "first_issue") return as_double(&config->first_issue_s);
  if (key == "issue_spacing") return as_double(&config->issue_spacing_s);
  if (key == "ad_radius") return as_double(&config->ad_radius_m);
  if (key == "ad_duration") return as_double(&config->ad_duration_s);
  if (key == "border_margin") return as_double(&config->border_margin_m);
  if (key == "stalls") return as_count(&config->num_stalls);
  if (key == "zipf") return as_double(&config->zipf_s);
  return ApplyConfigKey(key, value, &config->base);
}

[[nodiscard]]
Status LoadMultiAdConfigFile(const std::string& path, MultiAdConfig* config) {
  auto entries = ReadConfigEntries(path);
  if (!entries.ok()) return entries.status();
  for (const ConfigEntry& entry : *entries) {
    Status applied = ApplyMultiAdConfigKey(entry.key, entry.value, config);
    if (!applied.ok()) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(entry.line) + ": " +
                                     applied.message());
    }
  }
  Status valid = config->Validate();
  if (!valid.ok()) {
    return Status::InvalidArgument(path + ": " + valid.message());
  }
  return Status::Ok();
}

std::string SaveMultiAdConfigText(const MultiAdConfig& config) {
  std::ostringstream out;
  char buf[96];
  auto number = [&](const char* key, double v) {
    std::snprintf(buf, sizeof(buf), "%s = %g\n", key, v);
    out << buf;
  };
  out << SaveConfigText(config.base);
  out << "# multi-ad keys\n";
  out << "ads = " << config.num_ads << '\n';
  number("first_issue", config.first_issue_s);
  number("issue_spacing", config.issue_spacing_s);
  number("ad_radius", config.ad_radius_m);
  number("ad_duration", config.ad_duration_s);
  number("border_margin", config.border_margin_m);
  out << "stalls = " << config.num_stalls << '\n';
  number("zipf", config.zipf_s);
  return out.str();
}

[[nodiscard]]
Status LoadScenarioFileAuto(const std::string& path, MultiAdConfig* out,
                            bool* is_multi_ad) {
  auto entries = ReadConfigEntries(path);
  if (!entries.ok()) return entries.status();
  *is_multi_ad = std::any_of(
      entries->begin(), entries->end(),
      [](const ConfigEntry& entry) { return IsMultiAdKey(entry.key); });
  for (const ConfigEntry& entry : *entries) {
    Status applied =
        *is_multi_ad ? ApplyMultiAdConfigKey(entry.key, entry.value, out)
                     : ApplyConfigKey(entry.key, entry.value, &out->base);
    if (!applied.ok()) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(entry.line) + ": " +
                                     applied.message());
    }
  }
  Status valid = *is_multi_ad ? out->Validate() : out->base.Validate();
  if (!valid.ok()) {
    return Status::InvalidArgument(path + ": " + valid.message());
  }
  return Status::Ok();
}

}  // namespace madnet::scenario
