// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Builds and runs one complete experiment: simulator + medium + mobility +
// one protocol instance per peer + a stationary issuer, then computes the
// paper's three metrics over the advertisement's life cycle.

#ifndef MADNET_SCENARIO_SCENARIO_H_
#define MADNET_SCENARIO_SCENARIO_H_

#include <memory>
#include <vector>

#include "core/protocol.h"
#include "fault/fault_injector.h"
#include "mobility/mobility_model.h"
#include "mobility/trace_io.h"
#include "net/medium.h"
#include "obs/flight_recorder.h"
#include "obs/run_context.h"
#include "obs/tile_load.h"
#include "scenario/config.h"
#include "sim/simulator.h"
#include "sim/tile_grid.h"
#include "stats/delivery.h"
#include "util/logging.h"

namespace madnet::scenario {

/// Everything a run reports.
struct RunResult {
  stats::DeliveryReport report;   ///< Delivery rate & delivery times.
  net::MediumStats net;           ///< Message/byte/drop counters.
  fault::FaultStats fault;        ///< Injected-fault counters (all zero
                                  ///< when the config's plan is disabled).
  uint64_t events_executed = 0;   ///< Simulator events (sanity/efficiency).
  uint64_t ad_key = 0;            ///< The issued advertisement's key.
  double final_rank = 0.0;        ///< FM rank estimate at end of run (0 when
                                  ///< ranking is off or the ad vanished).
  double final_radius_m = 0.0;    ///< Ad's R at end (enlargement evidence).
  double final_duration_s = 0.0;  ///< Ad's D at end.

  double DeliveryRatePercent() const { return report.DeliveryRatePercent(); }
  double MeanDeliveryTime() const { return report.MeanDeliveryTime(); }
  uint64_t Messages() const { return net.messages_sent; }
};

/// One assembled simulation. Typical use is the one-liner RunScenario();
/// the class form lets examples reach into the pieces (issue more ads,
/// inspect caches) before/after Run().
class Scenario {
 public:
  /// Builds the full scenario. `config` must Validate() (asserted).
  explicit Scenario(const ScenarioConfig& config) : Scenario(config, nullptr) {}

  /// Observed variant: when `obs` is non-null the scenario emits trace
  /// records (per the context's enabled categories) from the simulator,
  /// the medium, and every protocol instance, books setup / event-loop /
  /// aggregation phase timings, and snapshots run metrics into the
  /// context's registry at the end of Run(). `obs` is borrowed and must
  /// outlive the scenario. With nullptr this is exactly the plain ctor —
  /// hot paths pay a single null test per potential record.
  Scenario(const ScenarioConfig& config, obs::RunContext* obs);

  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs to config.sim_time_s and reports the metrics. Call once.
  RunResult Run();

  /// The node id of the issuer (the stationary node at issue_location).
  /// Everything issuer-related — Issue(), the issuer_goes_offline event,
  /// the fault layer's churner exclusion — routes through this accessor,
  /// never a literal node id.
  net::NodeId issuer_id() const { return kIssuerId; }

  /// Peer ids are 1..num_peers.
  int num_peers() const { return config_.num_peers; }

  sim::Simulator* simulator() { return &simulator_; }
  net::Medium* medium() { return medium_.get(); }
  stats::DeliveryLog* delivery_log() { return &delivery_log_; }

  /// The protocol instance of a node (issuer included).
  core::Protocol* protocol(net::NodeId id) { return protocols_[id].get(); }

  /// The mobility model of a node.
  mobility::MobilityModel* mobility(net::NodeId id) {
    return mobilities_[id].get();
  }

  /// Key of the advertisement issued during Run(); 0 before it is issued.
  /// Valid inside custom events scheduled after config.issue_time_s (e.g.
  /// samplers) and after Run() returns.
  uint64_t issued_ad_key() const { return issued_ad_key_; }

  /// Records every node's trajectory over [0, horizon] (issuer included,
  /// as node id 0) — e.g. for SaveTraces, or for replaying the identical
  /// movement under a protocol built outside the Scenario harness.
  mobility::TraceSet RecordTraces(sim::Time horizon);

  const ScenarioConfig& config() const { return config_; }

  /// The spatial tile grid of the sharded event loop, or nullptr when the
  /// scenario runs on the single shared queue (config.tiles resolves to 1).
  /// See docs/SHARDING.md.
  const sim::TileGrid* shard_grid() const { return grid_.get(); }

 private:
  /// Node 0 is the issuer by construction (first node registered).
  static constexpr net::NodeId kIssuerId = 0;

  /// Creates the protocol instance for one node per config_.method.
  std::unique_ptr<core::Protocol> MakeProtocol(net::NodeId id, Rng rng);

  /// Creates one peer's mobility model per config_.mobility.
  std::unique_ptr<mobility::MobilityModel> MakeMobility(Rng rng);

  /// Snapshots the finished run's counters and reports into obs_->metrics.
  void CaptureMetrics(const RunResult& result);

  ScenarioConfig config_;
  obs::RunContext* obs_;  // Borrowed; may be null.
  sim::Simulator simulator_;
  // Log records carry virtual time while this scenario is on the stack.
  ScopedLogClock log_clock_;
  std::unique_ptr<net::Medium> medium_;
  /// Tile grid of the sharded event loop (config_.tiles); null while the
  /// classic single shared queue is in use. Owned here, borrowed by the
  /// simulator's router and the medium's delivery scheduling.
  std::unique_ptr<sim::TileGrid> grid_;
  stats::DeliveryLog delivery_log_;
  std::vector<std::unique_ptr<mobility::MobilityModel>> mobilities_;
  std::vector<std::unique_ptr<core::Protocol>> protocols_;
  /// Expands config_.fault into simulator events; null when the plan is
  /// disabled (the run is then byte-identical to a pre-fault-layer one).
  std::unique_ptr<fault::FaultInjector> injector_;
  /// Per-tile broadcast/delivery/queue-depth counters (observed runs only;
  /// tile edge = the radio range, so a tile is one interference
  /// neighbourhood). Summarized into obs_->metrics by CaptureMetrics.
  std::unique_ptr<obs::TileLoadMap> tiles_;
  /// Postmortem ring auto-attached for observed fault runs when the
  /// session did not install one (see ctor); detached in the dtor.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  uint64_t issued_ad_key_ = 0;
  bool ran_ = false;
};

/// Builds, runs, and reports one scenario.
RunResult RunScenario(const ScenarioConfig& config);

/// Observed variant; see Scenario's two-argument constructor.
RunResult RunScenario(const ScenarioConfig& config, obs::RunContext* obs);

/// Builds one mobile peer's mobility model per `config.mobility` (Random
/// Waypoint / Manhattan grid / hotspot waypoint / constant-velocity highway
/// lanes, with the speed, pause and model-specific fields of `config`).
/// Used by both the single-ad Scenario and the multi-ad harness.
std::unique_ptr<mobility::MobilityModel> MakePeerMobility(
    const ScenarioConfig& config, Rng rng);

}  // namespace madnet::scenario

#endif  // MADNET_SCENARIO_SCENARIO_H_
