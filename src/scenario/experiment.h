// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Replicated experiment runner: runs a scenario over several seeds and
// aggregates the paper's metrics, so every figure's data point carries a
// mean and a spread instead of a single noisy run.

#ifndef MADNET_SCENARIO_EXPERIMENT_H_
#define MADNET_SCENARIO_EXPERIMENT_H_

#include "scenario/config.h"
#include "scenario/scenario.h"
#include "stats/summary.h"

namespace madnet::scenario {

/// Cross-seed aggregation of RunResult.
struct Aggregate {
  stats::Summary delivery_rate_percent;
  stats::Summary mean_delivery_time_s;
  stats::Summary messages;
  stats::Summary peers_passed;
  stats::Summary final_rank;

  /// Convenience means.
  double DeliveryRate() const { return delivery_rate_percent.Mean(); }
  double DeliveryTime() const { return mean_delivery_time_s.Mean(); }
  double Messages() const { return messages.Mean(); }
};

/// Runs `replications` copies of `base` with seeds base.seed, base.seed+1,
/// ... and aggregates. Requires replications >= 1.
Aggregate RunReplicated(const ScenarioConfig& base, int replications);

}  // namespace madnet::scenario

#endif  // MADNET_SCENARIO_EXPERIMENT_H_
