// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Multi-advertisement scenarios: K ads issued from distinct locations at
// staggered times over the same peer population ("there could be many
// different shops, individuals issuing ads at different places" — paper,
// Section I). Advertising areas overlap and peers carry several ads at
// once, which is the regime where the top-k probability-ordered cache
// (Algorithm 1) actually gets exercised.

#ifndef MADNET_SCENARIO_MULTI_AD_H_
#define MADNET_SCENARIO_MULTI_AD_H_

#include <string>
#include <vector>

#include "scenario/config.h"
#include "scenario/scenario.h"
#include "stats/delivery.h"

namespace madnet::scenario {

/// Configuration of a multi-ad run. The embedded `base` supplies the
/// method, population, mobility, medium and protocol options; its single-ad
/// fields (issue_location, initial R/D, issue_time) are ignored in favour
/// of the fields below.
struct MultiAdConfig {
  ScenarioConfig base;

  int num_ads = 10;             ///< Ads, one issuer node each.
  double first_issue_s = 60.0;  ///< Issue time of ad 0.
  double issue_spacing_s = 30.0;///< Gap between consecutive issues.
  double ad_radius_m = 600.0;   ///< R of every ad.
  double ad_duration_s = 300.0; ///< D of every ad.
  /// Issue locations are drawn uniformly at least this far from the area
  /// border (so the advertising circle stays mostly inside).
  double border_margin_m = 600.0;

  /// Marketplace mode: when > 0, ads are issued from this many fixed stall
  /// locations instead of one fresh location per ad, and each ad picks its
  /// stall with Zipf weight 1/(rank+1)^zipf_s — a few popular stalls issue
  /// most of the ads (Zipf ad demand). 0 keeps the one-location-per-ad
  /// behaviour.
  int num_stalls = 0;
  /// Stall popularity skew s >= 0; 0 = uniform demand across stalls.
  double zipf_s = 1.0;

  /// Cross-field validation with key-named diagnostics, mirroring
  /// ScenarioConfig::Validate(). Fault plans are rejected here: the
  /// multi-ad harness does not build a FaultInjector, so a plan would be
  /// silently ignored.
  [[nodiscard]] Status Validate() const;
};

/// Per-ad and aggregate results of a multi-ad run.
struct MultiAdResult {
  struct PerAd {
    uint64_t key = 0;
    Vec2 location;
    sim::Time issue_time = 0.0;
    stats::DeliveryReport report;
  };
  std::vector<PerAd> ads;
  net::MediumStats net;

  /// Mean delivery rate over ads with at least one passing peer.
  double MeanDeliveryRatePercent() const;

  /// Mean delivery time over all delivered peers of all ads.
  double MeanDeliveryTime() const;
};

/// Builds, runs and reports a multi-ad scenario. Node ids: issuers are
/// 0..num_ads-1 (stationary at their ad's location), peers follow.
MultiAdResult RunMultiAdScenario(const MultiAdConfig& config);

// --- Multi-ad config files -------------------------------------------------
//
// A config file is multi-ad iff it uses at least one of the keys below;
// every single-ad key applies to the embedded `base`. See
// docs/scenario_schema.md ("Multi-ad keys").

/// True iff `key` is one of the multi-ad keys (ads, first_issue,
/// issue_spacing, ad_radius, ad_duration, border_margin, stalls, zipf).
bool IsMultiAdKey(const std::string& key);

/// Applies one assignment: multi-ad keys to `config`, everything else to
/// `config->base` via ApplyConfigKey. Same fail-fast diagnostics.
[[nodiscard]]
Status ApplyMultiAdConfigKey(const std::string& key, const std::string& value,
                             MultiAdConfig* config);

/// Loads a multi-ad config file on top of `*config`; validated before
/// returning, like LoadConfigFile.
[[nodiscard]]
Status LoadMultiAdConfigFile(const std::string& path, MultiAdConfig* config);

/// Serializes a multi-ad config (base keys + multi-ad keys); round-trips.
std::string SaveMultiAdConfigText(const MultiAdConfig& config);

/// Loads a scenario file of either kind: the file is multi-ad iff any of
/// its keys IsMultiAdKey. On success `*is_multi_ad` says which loader ran
/// and `out` holds the result (`out->base` alone is meaningful for
/// single-ad files). This is what `madnet_run --validate-only` and the
/// corpus smoke tests call, so every file under scenarios/ goes through
/// one sniffing contract.
[[nodiscard]]
Status LoadScenarioFileAuto(const std::string& path, MultiAdConfig* out,
                            bool* is_multi_ad);

}  // namespace madnet::scenario

#endif  // MADNET_SCENARIO_MULTI_AD_H_
