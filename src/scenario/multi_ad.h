// Copyright (c) 2026 madnet authors. All rights reserved.
//
// Multi-advertisement scenarios: K ads issued from distinct locations at
// staggered times over the same peer population ("there could be many
// different shops, individuals issuing ads at different places" — paper,
// Section I). Advertising areas overlap and peers carry several ads at
// once, which is the regime where the top-k probability-ordered cache
// (Algorithm 1) actually gets exercised.

#ifndef MADNET_SCENARIO_MULTI_AD_H_
#define MADNET_SCENARIO_MULTI_AD_H_

#include <vector>

#include "scenario/config.h"
#include "scenario/scenario.h"
#include "stats/delivery.h"

namespace madnet::scenario {

/// Configuration of a multi-ad run. The embedded `base` supplies the
/// method, population, mobility, medium and protocol options; its single-ad
/// fields (issue_location, initial R/D, issue_time) are ignored in favour
/// of the fields below.
struct MultiAdConfig {
  ScenarioConfig base;

  int num_ads = 10;             ///< Ads, one issuer node each.
  double first_issue_s = 60.0;  ///< Issue time of ad 0.
  double issue_spacing_s = 30.0;///< Gap between consecutive issues.
  double ad_radius_m = 600.0;   ///< R of every ad.
  double ad_duration_s = 300.0; ///< D of every ad.
  /// Issue locations are drawn uniformly at least this far from the area
  /// border (so the advertising circle stays mostly inside).
  double border_margin_m = 600.0;

  /// Cross-field validation.
  [[nodiscard]] Status Validate() const;
};

/// Per-ad and aggregate results of a multi-ad run.
struct MultiAdResult {
  struct PerAd {
    uint64_t key = 0;
    Vec2 location;
    sim::Time issue_time = 0.0;
    stats::DeliveryReport report;
  };
  std::vector<PerAd> ads;
  net::MediumStats net;

  /// Mean delivery rate over ads with at least one passing peer.
  double MeanDeliveryRatePercent() const;

  /// Mean delivery time over all delivered peers of all ads.
  double MeanDeliveryTime() const;
};

/// Builds, runs and reports a multi-ad scenario. Node ids: issuers are
/// 0..num_ads-1 (stationary at their ad's location), peers follow.
MultiAdResult RunMultiAdScenario(const MultiAdConfig& config);

}  // namespace madnet::scenario

#endif  // MADNET_SCENARIO_MULTI_AD_H_
