// Copyright (c) 2026 madnet authors. All rights reserved.

#include "scenario/config_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace madnet::scenario {

namespace {

[[nodiscard]] Status ParseMethodName(const std::string& name, Method* out) {
  if (name == "flooding") *out = Method::kFlooding;
  else if (name == "gossip") *out = Method::kGossip;
  else if (name == "optimized1") *out = Method::kOptimized1;
  else if (name == "optimized2") *out = Method::kOptimized2;
  else if (name == "optimized") *out = Method::kOptimized;
  else if (name == "exchange") *out = Method::kResourceExchange;
  else {
    return Status::InvalidArgument(
        "key 'method' = '" + name +
        "': unknown method (accepted: "
        "flooding|gossip|optimized1|optimized2|optimized|exchange)");
  }
  return Status::Ok();
}

[[nodiscard]] Status ParseMobilityName(const std::string& name, Mobility* out) {
  if (name == "waypoint") *out = Mobility::kRandomWaypoint;
  else if (name == "manhattan") *out = Mobility::kManhattanGrid;
  else if (name == "hotspot") *out = Mobility::kHotspot;
  else if (name == "highway") *out = Mobility::kHighway;
  else {
    return Status::InvalidArgument(
        "key 'mobility' = '" + name +
        "': unknown mobility (accepted: waypoint|manhattan|hotspot|highway)");
  }
  return Status::Ok();
}

const char* MethodToken(Method method) {
  switch (method) {
    case Method::kFlooding: return "flooding";
    case Method::kGossip: return "gossip";
    case Method::kOptimized1: return "optimized1";
    case Method::kOptimized2: return "optimized2";
    case Method::kOptimized: return "optimized";
    case Method::kResourceExchange: return "exchange";
  }
  return "?";
}

const char* MobilityToken(Mobility mobility) {
  switch (mobility) {
    case Mobility::kRandomWaypoint: return "waypoint";
    case Mobility::kManhattanGrid: return "manhattan";
    case Mobility::kHotspot: return "hotspot";
    case Mobility::kHighway: return "highway";
  }
  return "?";
}

/// Prefixes a parse failure with the key it belongs to, so "250m" in a
/// config file reads as: key 'range': not a number: '250m'.
[[nodiscard]] Status KeyedParseError(const std::string& key,
                                     const Status& error) {
  return Status::InvalidArgument("key '" + key + "': " + error.message());
}

}  // namespace

[[nodiscard]]
Status ApplyConfigKey(const std::string& key, const std::string& value,
                      ScenarioConfig* config) {
  auto as_double = [&](double* field) -> Status {
    auto parsed = ParseDouble(value);
    if (!parsed.ok()) return KeyedParseError(key, parsed.status());
    *field = *parsed;
    return Status::Ok();
  };
  auto as_bool = [&](bool* field) -> Status {
    auto parsed = ParseBool(value);
    if (!parsed.ok()) return KeyedParseError(key, parsed.status());
    *field = *parsed;
    return Status::Ok();
  };
  // Strict non-negative integer: rejects garbage *and* negatives here, so
  // a "cache = -5" can never wrap through a size_t cast into a huge
  // accepted capacity.
  auto as_count = [&](int64_t* out) -> Status {
    auto parsed = ParseInt(value);
    if (!parsed.ok()) return KeyedParseError(key, parsed.status());
    if (*parsed < 0) {
      return Status::InvalidArgument("key '" + key + "' = " + value +
                                     ": must be a non-negative integer");
    }
    *out = *parsed;
    return Status::Ok();
  };
  // Keep the index staleness slack covering the fastest peer whenever the
  // speed keys move, so saved fast scenarios reload without an explicit
  // 'max_speed'. An explicit 'max_speed' later in the file still wins.
  auto raise_max_speed = [&]() {
    config->medium.max_speed_mps =
        std::max(config->medium.max_speed_mps,
                 config->mean_speed_mps + config->speed_delta_mps);
  };

  if (key == "method") return ParseMethodName(value, &config->method);
  if (key == "mobility") return ParseMobilityName(value, &config->mobility);
  if (key == "peers") {
    int64_t peers = 0;
    Status s = as_count(&peers);
    if (s.ok()) config->num_peers = static_cast<int>(peers);
    return s;
  }
  if (key == "area") {
    Status s = as_double(&config->area_size_m);
    if (s.ok()) {
      config->issue_location = {config->area_size_m / 2.0,
                                config->area_size_m / 2.0};
    }
    return s;
  }
  if (key == "issue_x") return as_double(&config->issue_location.x);
  if (key == "issue_y") return as_double(&config->issue_location.y);
  if (key == "radius") return as_double(&config->initial_radius_m);
  if (key == "duration") return as_double(&config->initial_duration_s);
  if (key == "sim_time") return as_double(&config->sim_time_s);
  if (key == "issue_time") return as_double(&config->issue_time_s);
  if (key == "speed") {
    Status s = as_double(&config->mean_speed_mps);
    if (s.ok()) raise_max_speed();
    return s;
  }
  if (key == "speed_delta") {
    Status s = as_double(&config->speed_delta_mps);
    if (s.ok()) raise_max_speed();
    return s;
  }
  if (key == "max_speed") return as_double(&config->medium.max_speed_mps);
  if (key == "pause_min") return as_double(&config->min_pause_s);
  if (key == "pause_max") return as_double(&config->max_pause_s);
  if (key == "manhattan_block") return as_double(&config->manhattan_block_m);
  if (key == "hotspot_p") return as_double(&config->hotspot_probability);
  if (key == "hotspot_sigma") return as_double(&config->hotspot_sigma_m);
  if (key == "hotspot_extra") {
    int64_t extra = 0;
    Status s = as_count(&extra);
    if (s.ok()) config->hotspot_extra = static_cast<int>(extra);
    return s;
  }
  if (key == "round") {
    Status s = as_double(&config->gossip.round_time_s);
    if (s.ok()) config->flooding.round_time_s = config->gossip.round_time_s;
    return s;
  }
  if (key == "alpha") {
    Status s = as_double(&config->gossip.propagation.alpha);
    if (s.ok()) config->flooding.propagation = config->gossip.propagation;
    return s;
  }
  if (key == "beta") {
    Status s = as_double(&config->gossip.propagation.beta);
    if (s.ok()) config->flooding.propagation = config->gossip.propagation;
    return s;
  }
  if (key == "dis") return as_double(&config->gossip.dis_m);
  if (key == "cache") {
    int64_t cache = 0;
    Status s = as_count(&cache);
    if (s.ok()) config->gossip.cache_capacity = static_cast<size_t>(cache);
    return s;
  }
  if (key == "range") return as_double(&config->medium.range_m);
  if (key == "loss") return as_double(&config->medium.loss_probability);
  if (key == "fading") return as_double(&config->medium.fading_exponent);
  if (key == "collisions") return as_bool(&config->medium.enable_collisions);
  if (key == "csma") return as_bool(&config->medium.csma);
  if (key == "ranking") {
    Status s = as_bool(&config->gossip.ranking);
    if (s.ok() && config->gossip.ranking) {
      config->assign_interests = true;
      if (config->interest_options.universe.empty()) {
        config->interest_options.universe =
            core::InterestGenerator::DefaultUniverse();
      }
    }
    return s;
  }
  if (key == "issuer_offline") return as_bool(&config->issuer_goes_offline);
  if (key == "tiles") {
    int64_t tiles = 0;
    Status s = as_count(&tiles);
    if (s.ok()) config->tiles = static_cast<int>(tiles);
    return s;
  }
  // Fault-plan keys (docs/FAULTS.md). All off by default.
  if (key == "churn_rate") return as_double(&config->fault.churn_rate);
  if (key == "churn_up") return as_double(&config->fault.churn_up_s);
  if (key == "churn_down") return as_double(&config->fault.churn_down_s);
  if (key == "churn_crash") return as_bool(&config->fault.churn_crash);
  if (key == "churn_start") return as_double(&config->fault.churn_start_s);
  if (key == "loss_extra") return as_double(&config->fault.loss_extra);
  if (key == "loss_episode") return as_double(&config->fault.loss_episode_s);
  if (key == "loss_period") return as_double(&config->fault.loss_period_s);
  if (key == "loss_start") return as_double(&config->fault.loss_start_s);
  if (key == "outage_x0") return as_double(&config->fault.outage_rect.min.x);
  if (key == "outage_y0") return as_double(&config->fault.outage_rect.min.y);
  if (key == "outage_x1") return as_double(&config->fault.outage_rect.max.x);
  if (key == "outage_y1") return as_double(&config->fault.outage_rect.max.y);
  if (key == "outage_start") return as_double(&config->fault.outage_start_s);
  if (key == "outage_end") return as_double(&config->fault.outage_end_s);
  if (key == "seed") {
    int64_t seed = 0;
    Status s = as_count(&seed);
    if (s.ok()) config->seed = static_cast<uint64_t>(seed);
    return s;
  }
  return Status::InvalidArgument("unknown config key '" + key +
                                 "' (see docs/scenario_schema.md)");
}

[[nodiscard]]
StatusOr<std::vector<ConfigEntry>> ReadConfigEntries(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::IoError("cannot open " + path);
  std::vector<ConfigEntry> entries;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": expected 'key = value', got '" + std::string(trimmed) + "'");
    }
    ConfigEntry entry;
    entry.key = std::string(Trim(trimmed.substr(0, eq)));
    entry.value = std::string(Trim(trimmed.substr(eq + 1)));
    entry.line = line_number;
    if (entry.key.empty()) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) +
                                     ": missing key before '='");
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

[[nodiscard]]
Status LoadConfigFile(const std::string& path, ScenarioConfig* config) {
  auto entries = ReadConfigEntries(path);
  if (!entries.ok()) return entries.status();
  for (const ConfigEntry& entry : *entries) {
    Status applied = ApplyConfigKey(entry.key, entry.value, config);
    if (!applied.ok()) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(entry.line) + ": " +
                                     applied.message());
    }
  }
  Status valid = config->Validate();
  if (!valid.ok()) {
    return Status::InvalidArgument(path + ": " + valid.message());
  }
  return Status::Ok();
}

std::string SaveConfigText(const ScenarioConfig& config) {
  std::ostringstream out;
  char buf[96];
  auto number = [&](const char* key, double v) {
    std::snprintf(buf, sizeof(buf), "%s = %g\n", key, v);
    out << buf;
  };
  auto boolean = [&](const char* key, bool v) {
    out << key << " = " << (v ? "true" : "false") << '\n';
  };
  out << "# madnet scenario config\n";
  out << "method = " << MethodToken(config.method) << '\n';
  out << "mobility = " << MobilityToken(config.mobility) << '\n';
  out << "peers = " << config.num_peers << '\n';
  // 'area' recenters the issue location, so issue_x/issue_y must follow it
  // to restore an off-centre issuer.
  number("area", config.area_size_m);
  number("issue_x", config.issue_location.x);
  number("issue_y", config.issue_location.y);
  number("radius", config.initial_radius_m);
  number("duration", config.initial_duration_s);
  number("sim_time", config.sim_time_s);
  number("issue_time", config.issue_time_s);
  // 'speed'/'speed_delta' auto-raise max_speed on load; the explicit
  // 'max_speed' afterwards restores any larger configured slack.
  number("speed", config.mean_speed_mps);
  number("speed_delta", config.speed_delta_mps);
  number("max_speed", config.medium.max_speed_mps);
  number("pause_min", config.min_pause_s);
  number("pause_max", config.max_pause_s);
  number("manhattan_block", config.manhattan_block_m);
  number("hotspot_p", config.hotspot_probability);
  number("hotspot_sigma", config.hotspot_sigma_m);
  out << "hotspot_extra = " << config.hotspot_extra << '\n';
  number("round", config.gossip.round_time_s);
  number("alpha", config.gossip.propagation.alpha);
  number("beta", config.gossip.propagation.beta);
  number("dis", config.gossip.dis_m);
  out << "cache = " << config.gossip.cache_capacity << '\n';
  number("range", config.medium.range_m);
  number("loss", config.medium.loss_probability);
  number("fading", config.medium.fading_exponent);
  boolean("collisions", config.medium.enable_collisions);
  boolean("csma", config.medium.csma);
  boolean("ranking", config.gossip.ranking);
  boolean("issuer_offline", config.issuer_goes_offline);
  out << "tiles = " << config.tiles << '\n';
  number("churn_rate", config.fault.churn_rate);
  number("churn_up", config.fault.churn_up_s);
  number("churn_down", config.fault.churn_down_s);
  boolean("churn_crash", config.fault.churn_crash);
  number("churn_start", config.fault.churn_start_s);
  number("loss_extra", config.fault.loss_extra);
  number("loss_episode", config.fault.loss_episode_s);
  number("loss_period", config.fault.loss_period_s);
  number("loss_start", config.fault.loss_start_s);
  number("outage_x0", config.fault.outage_rect.min.x);
  number("outage_y0", config.fault.outage_rect.min.y);
  number("outage_x1", config.fault.outage_rect.max.x);
  number("outage_y1", config.fault.outage_rect.max.y);
  number("outage_start", config.fault.outage_start_s);
  number("outage_end", config.fault.outage_end_s);
  out << "seed = " << config.seed << '\n';
  return out.str();
}

}  // namespace madnet::scenario
